package experiments

import (
	"fmt"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
)

// fig10Pds is the selection fraction of the ablation study (paper: 50%).
const fig10Pds = 0.5

// Fig10aResult is the fine-tuned-part ablation: EDS vs RDS for each
// trainable portion of the model.
type Fig10aResult struct {
	// Parts are the ablated trainable portions.
	Parts []models.FinetunePart
	// EDS and RDS are best accuracies parallel to Parts.
	EDS []float64
	RDS []float64
}

// RunFig10a executes the fine-tuned-part ablation on the 100-class target
// under Diri(0.1), pretraining on the broad source domain.
func RunFig10a(env *Env) (*Fig10aResult, error) {
	t100, err := env.Target100()
	if err != nil {
		return nil, err
	}
	return runFinetunePartAblation(env, t100, env.Suite.Source, 10100, 10)
}

// RunFig10aInDomain repeats the ablation with *in-domain* pretraining: the
// source is the target's own distribution (fresh samples). The paper defends
// its "classifier-only is best" conclusion only for source ≈ target; this
// variant realizes that premise exactly.
func RunFig10aInDomain(env *Env) (*Fig10aResult, error) {
	t100, err := env.Target100()
	if err != nil {
		return nil, err
	}
	return runFinetunePartAblation(env, t100, t100, 10150, 13)
}

// runFinetunePartAblation runs EDS and RDS at every finetune part.
func runFinetunePartAblation(env *Env, target, source *data.Domain, fedSalt, runSalt int64) (*Fig10aResult, error) {
	fed, err := env.BuildFederation(target, env.Dims.LargeClients, 0.1, fedSalt)
	if err != nil {
		return nil, err
	}
	res := &Fig10aResult{
		Parts: []models.FinetunePart{
			models.FinetuneFull, models.FinetuneLarge,
			models.FinetuneModerate, models.FinetuneClassifier,
		},
	}
	for _, part := range res.Parts {
		eds := Method{
			Name: "FedFT-EDS/" + part.String(), Pretrained: true, Part: part,
			Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: fig10Pds,
		}
		rds := Method{
			Name: "FedFT-RDS/" + part.String(), Pretrained: true, Part: part,
			Selector: selection.Random{}, Fraction: fig10Pds,
		}
		he, err := env.RunMethod(eds, fed, target, source, runSalt)
		if err != nil {
			return nil, err
		}
		hr, err := env.RunMethod(rds, fed, target, source, runSalt)
		if err != nil {
			return nil, err
		}
		res.EDS = append(res.EDS, he.BestAccuracy)
		res.RDS = append(res.RDS, hr.BestAccuracy)
	}
	return res, nil
}

// Render prints the ablation in the paper's shape.
func (r *Fig10aResult) Render() string {
	tbl := NewTable("Fig. 10a — part of the model fine-tuned (Pds=50%, Diri(0.1))",
		"Trainable part", "FedFT-EDS", "FedFT-RDS")
	for i, part := range r.Parts {
		tbl.AddRow(part.String(), Pct(r.EDS[i]), Pct(r.RDS[i]))
	}
	return tbl.String()
}

// Fig10bResult is the data-heterogeneity ablation: EDS vs RDS across alpha.
type Fig10bResult struct {
	// Alphas are the Dirichlet concentrations.
	Alphas []float64
	// EDS and RDS are best accuracies parallel to Alphas.
	EDS []float64
	RDS []float64
}

// RunFig10b executes the heterogeneity ablation.
func RunFig10b(env *Env) (*Fig10bResult, error) {
	t100, err := env.Target100()
	if err != nil {
		return nil, err
	}
	res := &Fig10bResult{Alphas: []float64{0.01, 0.05, 0.1, 0.5, 1.0}}
	for _, alpha := range res.Alphas {
		fed, err := env.BuildFederation(t100, env.Dims.LargeClients, alpha, 10200+int64(alpha*1000))
		if err != nil {
			return nil, err
		}
		eds := Method{
			Name: "FedFT-EDS", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: fig10Pds,
		}
		rds := Method{
			Name: "FedFT-RDS", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Random{}, Fraction: fig10Pds,
		}
		he, err := env.RunMethod(eds, fed, t100, env.Suite.Source, 11)
		if err != nil {
			return nil, err
		}
		hr, err := env.RunMethod(rds, fed, t100, env.Suite.Source, 11)
		if err != nil {
			return nil, err
		}
		res.EDS = append(res.EDS, he.BestAccuracy)
		res.RDS = append(res.RDS, hr.BestAccuracy)
	}
	return res, nil
}

// Render prints the ablation in the paper's shape.
func (r *Fig10bResult) Render() string {
	tbl := NewTable("Fig. 10b — data heterogeneity (Pds=50%)",
		"Diri(α)", "FedFT-EDS", "FedFT-RDS")
	for i, alpha := range r.Alphas {
		tbl.AddRow(fmt.Sprintf("%g", alpha), Pct(r.EDS[i]), Pct(r.RDS[i]))
	}
	return tbl.String()
}

// Fig10cResult is the hardened-softmax temperature ablation.
type Fig10cResult struct {
	// Temperatures are the ρ values swept.
	Temperatures []float64
	// EDS are best accuracies parallel to Temperatures.
	EDS []float64
	// RDSBaseline is the random-selection reference accuracy.
	RDSBaseline float64
}

// RunFig10c executes the temperature ablation under Diri(0.1).
func RunFig10c(env *Env) (*Fig10cResult, error) {
	t100, err := env.Target100()
	if err != nil {
		return nil, err
	}
	fed, err := env.BuildFederation(t100, env.Dims.LargeClients, 0.1, 10300)
	if err != nil {
		return nil, err
	}
	res := &Fig10cResult{Temperatures: []float64{0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0}}
	rds := Method{
		Name: "FedFT-RDS", Pretrained: true, Part: models.FinetuneModerate,
		Selector: selection.Random{}, Fraction: fig10Pds,
	}
	hr, err := env.RunMethod(rds, fed, t100, env.Suite.Source, 12)
	if err != nil {
		return nil, err
	}
	res.RDSBaseline = hr.BestAccuracy
	for _, rho := range res.Temperatures {
		eds := Method{
			Name: fmt.Sprintf("FedFT-EDS ρ=%g", rho), Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Entropy{Temperature: rho}, Fraction: fig10Pds,
		}
		he, err := env.RunMethod(eds, fed, t100, env.Suite.Source, 12)
		if err != nil {
			return nil, err
		}
		res.EDS = append(res.EDS, he.BestAccuracy)
	}
	return res, nil
}

// Render prints the ablation in the paper's shape.
func (r *Fig10cResult) Render() string {
	tbl := NewTable("Fig. 10c — temperature in the hardened softmax (Pds=50%, Diri(0.1))",
		"ρ", "FedFT-EDS", "FedFT-RDS baseline")
	for i, rho := range r.Temperatures {
		tbl.AddRow(fmt.Sprintf("%g", rho), Pct(r.EDS[i]), Pct(r.RDSBaseline))
	}
	return tbl.String()
}
