package experiments

import (
	"fmt"
	"strings"

	"fedfteds/internal/comm"
	"fedfteds/internal/core"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/tensor"
)

// CodecSpecs is the codec-sweep lineup: the identity baseline (lossless,
// honest wire accounting), the two quantizers, and topk sparsification with
// error feedback at the default 5% density. The sweep reads as "what does
// each compression level cost in accuracy per uplink byte saved".
var CodecSpecs = []string{"identity", "float16", "int8", "topk:0.05"}

// CodecRow is one codec's outcome on the shared federation.
type CodecRow struct {
	// Spec is the codec the row ran under (a comm.ParseCodec input,
	// canonicalized).
	Spec string
	// Hist is the run's full history; TotalUplinkBytes counts the real
	// encoded payload sizes, so rows are directly comparable.
	Hist core.History
}

// CodecCompareResult compares uplink codecs on one federation: every row
// sees the same clients, model initialization and seed; only the wire
// encoding of each client update differs. Quantization noise and topk's
// error-feedback dynamics flow into the accuracy columns, the encoded
// payload sizes into the uplink columns.
type CodecCompareResult struct {
	// Rows holds one entry per codec, in input order.
	Rows []CodecRow
	// NumClients is the federation size.
	NumClients int
}

// RunCodecs runs every codec spec in specs (nil means the standard
// CodecSpecs lineup) on one shared federation with FedFT-EDS locals. The
// identity row is the accuracy and bandwidth baseline: it round-trips
// losslessly through the same wire path, so any accuracy gap in the other
// rows is pure codec effect, not accounting drift.
func RunCodecs(env *Env, specs []string) (*CodecCompareResult, error) {
	if len(specs) == 0 {
		specs = CodecSpecs
	}
	numClients := env.Dims.SmallClients
	// Every row shares one seed: the comparison isolates the codec, not the
	// run randomness.
	seed := tensor.DeriveSeed(uint64(env.Seed), 0xC0DEC)
	res := &CodecCompareResult{NumClients: numClients}
	for _, spec := range specs {
		codec, err := comm.ParseCodec(spec)
		if err != nil {
			return nil, err
		}
		fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 7272)
		if err != nil {
			return nil, err
		}
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Rounds:         env.Dims.Rounds,
			LocalEpochs:    env.Dims.LocalEpochs,
			LR:             paperLR,
			Momentum:       paperMomentum,
			FinetunePart:   models.FinetuneModerate,
			Selector:       selection.Entropy{Temperature: paperTemperature},
			SelectFraction: 0.5,
			Codec:          codec.Name(),
			Seed:           seed,
		}
		hist, err := env.RunFL(fmt.Sprintf("codec-%s-c%d", codec.Name(), numClients),
			cfg, global, fed.Clients, fed.Test)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CodecRow{Spec: codec.Name(), Hist: hist})
	}
	return res, nil
}

// baseline returns the identity row's uplink bytes and final accuracy (ok
// false without an identity row).
func (r *CodecCompareResult) baseline() (int64, float64, bool) {
	for _, row := range r.Rows {
		if row.Spec == comm.CodecIdentity {
			return row.Hist.TotalUplinkBytes, row.Hist.FinalAccuracy, true
		}
	}
	return 0, 0, false
}

// Render prints the sweep as a table: per codec the compression ratio over
// the identity baseline, total uplink traffic and the share saved, best and
// final accuracy, and the final-accuracy delta against identity — the
// compression-vs-accuracy tradeoff curve in rows.
func (r *CodecCompareResult) Render() string {
	baseBytes, baseAcc, haveBase := r.baseline()
	var b strings.Builder
	fmt.Fprintf(&b, "Codec sweep: %d clients, FedFT-EDS locals, uplink wire simulation\n", r.NumClients)
	fmt.Fprintf(&b, "%-12s %8s %11s %9s %9s %9s %10s\n",
		"codec", "ratio", "uplink KB", "saved", "best acc", "final acc", "Δfinal")
	for _, row := range r.Rows {
		ratio, saved, delta := "n/a", "n/a", "n/a"
		if haveBase && row.Hist.TotalUplinkBytes > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(baseBytes)/float64(row.Hist.TotalUplinkBytes))
			saved = fmt.Sprintf("%.1f%%", 100*(1-float64(row.Hist.TotalUplinkBytes)/float64(baseBytes)))
			delta = fmt.Sprintf("%+.2fpt", 100*(row.Hist.FinalAccuracy-baseAcc))
		}
		fmt.Fprintf(&b, "%-12s %8s %11.1f %9s %8.2f%% %8.2f%% %10s\n",
			row.Spec, ratio,
			float64(row.Hist.TotalUplinkBytes)/1024, saved,
			100*row.Hist.BestAccuracy, 100*row.Hist.FinalAccuracy,
			delta)
	}
	return b.String()
}
