package experiments

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/fleet"
	"fedfteds/internal/models"
	"fedfteds/internal/sched"
	"fedfteds/internal/selection"
	"fedfteds/internal/tensor"
)

// Fleet experiment constants. Sample counts are fixed rather than
// scale-derived: the virtual fleet's point is population scale, and a
// million data-rich clients would defeat the bounded-memory headline the
// experiment exists to measure.
const (
	fleetMinSamples = 10
	fleetMaxSamples = 30
	fleetAlpha      = 0.3
	fleetClusters   = 8
	// fleetDayRounds is one simulated day at one aggregation per hour.
	fleetDayRounds = 24
)

// RunFLSource is RunFL for source-backed (virtual fleet) runs: the same
// artifact-store and resume discipline, but clients come from a
// core.ClientSource instead of a materialized slice.
func (e *Env) RunFLSource(runName string, cfg core.Config, global *models.Model, src core.ClientSource, test *data.Dataset) (core.History, error) {
	if e.ckptPolicy.Dir != "" {
		cfg.CheckpointDir = filepath.Join(e.ckptPolicy.Dir, sanitizeRunName(runName))
		cfg.CheckpointEvery = e.ckptPolicy.Every
	}
	runner, err := core.NewRunnerWithSource(cfg, global, src, test)
	if err != nil {
		return core.History{}, fmt.Errorf("experiments: %s: %w", runName, err)
	}
	if e.ckptPolicy.Resume && cfg.CheckpointDir != "" {
		if _, err := runner.ResumeLatest(); err != nil && !errors.Is(err, ckpt.ErrNoCheckpoint) {
			return core.History{}, fmt.Errorf("experiments: resume %s: %w", runName, err)
		}
	}
	hist, err := runner.Run()
	if err != nil {
		return core.History{}, fmt.Errorf("experiments: %s: run: %w", runName, err)
	}
	return hist, nil
}

// FleetOptions parameterizes the fleet experiments.
type FleetOptions struct {
	// Clients is the fleet population; 0 picks the scale default
	// (300/2000/10000 for smoke/fast/full).
	Clients int
	// Cohort is the per-round cohort (and async in-flight window); 0 derives
	// one from the population.
	Cohort int
	// Policy is the scheduler spec for the cohort choice (default
	// "cluster:uniform", the similarity-aware policy).
	Policy string
	// TracePath replays availability from a fleettrace file; empty uses the
	// built-in diurnal day/night trace.
	TracePath string
	// Buffer switches the day run to buffered-asynchronous aggregation with
	// this buffer size; 0 runs the synchronous (checkpointable) engine.
	Buffer int
	// MaxStaleness is the async discard cap; negative keeps every update.
	MaxStaleness int
	// Eager materializes the whole fleet up front (the O(N) baseline the
	// virtual fleet exists to avoid). Callers must size-check first —
	// FleetEagerBytes estimates the cost.
	Eager bool
}

// FleetEagerBytes estimates the resident bytes of materializing an n-client
// fleet eagerly under the experiment sizing (the standard suite's 64-dim
// observations). fedsim's -clients fail-fast is driven by this estimate.
func FleetEagerBytes(clients int) int64 {
	return fleet.EstimateEagerBytes(clients, fleetMinSamples, fleetMaxSamples, 64)
}

// fleetScaleClients returns the default population for a scale.
func fleetScaleClients(s Scale) int {
	switch s {
	case ScaleSmoke:
		return 300
	case ScaleFast:
		return 2000
	default:
		return 10000
	}
}

// fleetSpec assembles the virtual-fleet spec for a population size.
func (e *Env) fleetSpec(clients, cohort int) fleet.Spec {
	clusters := fleetClusters
	if clients < 2*fleetClusters {
		clusters = 2
	}
	return fleet.Spec{
		Clients: clients, Seed: e.Seed + 2000, Domain: e.Suite.Target10,
		MinSamples: fleetMinSamples, MaxSamples: fleetMaxSamples, Alpha: fleetAlpha,
		MedianFLOPS: deviceMedianFLOPS, Sigma: deviceSigma,
		Clusters: clusters, PoolSize: 2 * cohort,
	}
}

// fleetCohort derives the default cohort from the population.
func fleetCohort(clients int) int {
	k := clients / 16
	if k < 4 {
		k = 4
	}
	if k > 64 {
		k = 64
	}
	return k
}

// fleetScheduler parses the policy and wraps it with trace availability.
func fleetScheduler(opts FleetOptions, clients int) (sched.Scheduler, *fleet.Trace, error) {
	name := opts.Policy
	if name == "" {
		name = "cluster:uniform"
	}
	inner, err := sched.Parse(name)
	if err != nil {
		return nil, nil, err
	}
	var tr *fleet.Trace
	if opts.TracePath != "" {
		tr, err = fleet.LoadTrace(opts.TracePath)
	} else {
		tr, err = fleet.ParseTrace(fleet.DiurnalTraceText(clients))
	}
	if err != nil {
		return nil, nil, err
	}
	return tr.Scheduler(inner), tr, nil
}

// FleetDayResult is the headline experiment's outcome: a simulated day over
// an N-client virtual fleet in O(cohort) memory.
type FleetDayResult struct {
	// Clients is the fleet population; Cohort the per-round cohort.
	Clients, Cohort int
	// Policy is the effective scheduler name (trace fingerprint included).
	Policy string
	// Async reports the buffered-asynchronous engine was used, with Buffer.
	Async  bool
	Buffer int
	// Hist is the day's run history.
	Hist core.History
	// Stats is the client pool's lifecycle accounting for the run.
	Stats fleet.Stats
	// Fingerprint identifies the fleet population (rides every checkpoint).
	Fingerprint string
	// EagerBytes estimates what materializing the fleet up front would cost.
	EagerBytes int64
}

// RunFleetDay runs the headline "simulated day" experiment: fleetDayRounds
// hourly aggregations over an N-client virtual fleet with diurnal (or
// replayed) availability and similarity-aware cohort scheduling. Clients
// exist as seeds until scheduled; resident memory stays O(cohort) however
// large N is. With Buffer > 0 the day runs on the event-driven buffered-async
// engine (rounds overlap); otherwise the synchronous engine runs and the
// day is checkpointable/resumable under the environment's policy.
func RunFleetDay(env *Env, opts FleetOptions) (*FleetDayResult, error) {
	clients := opts.Clients
	if clients <= 0 {
		clients = fleetScaleClients(env.Scale)
	}
	cohort := opts.Cohort
	if cohort <= 0 {
		cohort = fleetCohort(clients)
	}
	if cohort > clients {
		return nil, fmt.Errorf("%w: cohort %d exceeds the %d-client fleet", ErrExperiment, cohort, clients)
	}
	scheduler, _, err := fleetScheduler(opts, clients)
	if err != nil {
		return nil, err
	}

	spec := env.fleetSpec(clients, cohort)
	f, err := fleet.New(spec)
	if err != nil {
		return nil, err
	}
	test, err := env.Suite.Target10.GenerateBalanced(env.Dims.TestSamples, tensor.NewRand(uint64(env.Seed), 0xF1EE7E57))
	if err != nil {
		return nil, err
	}
	global, err := env.FreshModel(env.Suite.Target10)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Rounds:         fleetDayRounds,
		LocalEpochs:    env.Dims.LocalEpochs,
		LR:             paperLR,
		Momentum:       paperMomentum,
		FinetunePart:   models.FinetuneFull,
		Selector:       selection.Entropy{Temperature: paperTemperature},
		SelectFraction: 0.5,
		Scheduler:      scheduler,
		CohortSize:     cohort,
		Seed:           tensor.DeriveSeed(uint64(env.Seed), uint64(clients), 0xF1EE7DA1),
	}

	res := &FleetDayResult{
		Clients: clients, Cohort: cohort, Policy: scheduler.Name(),
		Async: opts.Buffer > 0, Buffer: opts.Buffer,
		Fingerprint: f.Fingerprint(),
		EagerBytes:  fleet.EstimateEagerBytes(clients, spec.MinSamples, spec.MaxSamples, env.Suite.Universe.ObsDim),
	}
	runName := fmt.Sprintf("fleetday-n%d-k%d-%s", clients, cohort, scheduler.Name())
	switch {
	case opts.Eager && opts.Buffer > 0:
		return nil, fmt.Errorf("%w: the eager baseline runs the synchronous engine only", ErrExperiment)
	case opts.Eager:
		// The O(N) baseline: every virtual client materialized up front. A
		// fleet-backed run over the same spec is bit-identical (the sources
		// agree client for client), so this row exists for the memory contrast.
		eager, err := f.MaterializeAll()
		if err != nil {
			return nil, err
		}
		res.Hist, err = env.RunFL(runName+"-eager", cfg, global, eager, test)
		if err != nil {
			return nil, err
		}
	case opts.Buffer > 0:
		runner, err := core.NewRunnerWithSource(cfg, global, f, test)
		if err != nil {
			return nil, err
		}
		res.Hist, err = runner.RunFleetAsync(core.FleetAsyncConfig{
			AsyncConfig: core.AsyncConfig{Buffer: opts.Buffer, MaxStaleness: opts.MaxStaleness},
		})
		if err != nil {
			return nil, err
		}
	default:
		res.Hist, err = env.RunFLSource(runName, cfg, global, f, test)
		if err != nil {
			return nil, err
		}
	}
	res.Stats = f.Stats()
	return res, nil
}

// Render prints the day run: the headline sizing, the pool's lifecycle
// accounting (the O(cohort) evidence), and the hourly learning curve.
func (r *FleetDayResult) Render() string {
	var b strings.Builder
	engine := "synchronous"
	if r.Async {
		engine = fmt.Sprintf("buffered-async (buffer %d)", r.Buffer)
	}
	fmt.Fprintf(&b, "Virtual-fleet day: %d clients, cohort %d, %s, %s engine\n",
		r.Clients, r.Cohort, r.Policy, engine)
	fmt.Fprintf(&b, "fleet fingerprint %s; eager materialization would need ~%.1f GiB\n",
		r.Fingerprint, float64(r.EagerBytes)/(1<<30))
	fmt.Fprintf(&b, "pool: %d materializations, %d hits, %d evictions, peak %d resident\n",
		r.Stats.Materializations, r.Stats.Hits, r.Stats.Evictions, r.Stats.PeakResident)
	fmt.Fprintf(&b, "%5s %9s %9s %12s %14s\n", "hour", "cohort", "test acc", "train loss", "client-seconds")
	for _, rec := range r.Hist.Records {
		acc := "-"
		if rec.TestAccuracy == rec.TestAccuracy { // not NaN
			acc = fmt.Sprintf("%8.2f%%", 100*rec.TestAccuracy)
		}
		fmt.Fprintf(&b, "%5d %9d %9s %12.4f %14.4g\n",
			rec.Round, rec.CohortSize, acc, rec.MeanTrainLoss, rec.CumTrainSeconds)
	}
	fmt.Fprintf(&b, "best %.2f%%, final %.2f%%, %.4g simulated client-seconds\n",
		100*r.Hist.BestAccuracy, 100*r.Hist.FinalAccuracy, r.Hist.TotalTrainSeconds)
	return b.String()
}

// FleetRow is one policy's outcome in the fleet comparison.
type FleetRow struct {
	// Policy is the row's label.
	Policy string
	// Hist is the run history.
	Hist core.History
	// Stats is the pool accounting for the row's run.
	Stats fleet.Stats
}

// FleetCompareResult compares cohort policies over one virtual fleet:
// uniform sampling, similarity-aware cluster sampling, and cluster sampling
// under the diurnal availability trace.
type FleetCompareResult struct {
	// Rows holds one entry per policy.
	Rows []FleetRow
	// Clients and Cohort echo the shared sizing.
	Clients, Cohort int
}

// RunFleetCompare runs the fleet policy sweep: every row shares the fleet
// spec (same fingerprint, same virtual population), the model initialization
// and the seed; only the cohort choice differs.
func RunFleetCompare(env *Env, opts FleetOptions) (*FleetCompareResult, error) {
	clients := opts.Clients
	if clients <= 0 {
		clients = fleetScaleClients(env.Scale)
	}
	cohort := opts.Cohort
	if cohort <= 0 {
		cohort = fleetCohort(clients)
	}
	test, err := env.Suite.Target10.GenerateBalanced(env.Dims.TestSamples, tensor.NewRand(uint64(env.Seed), 0xF1EE7E57))
	if err != nil {
		return nil, err
	}

	type rowSpec struct {
		label string
		build func() (sched.Scheduler, error)
	}
	rows := []rowSpec{
		{"uniform", func() (sched.Scheduler, error) { return sched.UniformRandom{}, nil }},
		{"cluster:uniform", func() (sched.Scheduler, error) {
			return sched.ClusterSampling{Inner: sched.UniformRandom{}}, nil
		}},
		{"trace+cluster", func() (sched.Scheduler, error) {
			s, _, err := fleetScheduler(FleetOptions{Policy: "cluster:uniform", TracePath: opts.TracePath}, clients)
			return s, err
		}},
	}

	res := &FleetCompareResult{Clients: clients, Cohort: cohort}
	for _, row := range rows {
		scheduler, err := row.build()
		if err != nil {
			return nil, err
		}
		f, err := fleet.New(env.fleetSpec(clients, cohort))
		if err != nil {
			return nil, err
		}
		global, err := env.FreshModel(env.Suite.Target10)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Rounds:         env.Dims.Rounds,
			LocalEpochs:    env.Dims.LocalEpochs,
			LR:             paperLR,
			Momentum:       paperMomentum,
			FinetunePart:   models.FinetuneFull,
			Selector:       selection.Entropy{Temperature: paperTemperature},
			SelectFraction: 0.5,
			Scheduler:      scheduler,
			CohortSize:     cohort,
			Seed:           tensor.DeriveSeed(uint64(env.Seed), uint64(clients), 0xF1EE7DA1),
		}
		hist, err := env.RunFLSource(fmt.Sprintf("fleet-%s-n%d-k%d", row.label, clients, cohort),
			cfg, global, f, test)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FleetRow{Policy: row.label, Hist: hist, Stats: f.Stats()})
	}
	return res, nil
}

// Render prints the comparison: accuracy, simulated client-seconds, and the
// pool accounting per policy.
func (r *FleetCompareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Virtual-fleet policy comparison: cohort %d of %d virtual clients\n", r.Cohort, r.Clients)
	fmt.Fprintf(&b, "%-16s %9s %9s %14s %8s %6s %10s\n",
		"policy", "best acc", "final acc", "client-seconds", "mater.", "hits", "peak res.")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %8.2f%% %8.2f%% %14.4g %8d %6d %10d\n",
			row.Policy, 100*row.Hist.BestAccuracy, 100*row.Hist.FinalAccuracy,
			row.Hist.TotalTrainSeconds, row.Stats.Materializations, row.Stats.Hits,
			row.Stats.PeakResident)
	}
	return b.String()
}
