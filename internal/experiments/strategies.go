package experiments

import (
	"fmt"
	"strings"

	"fedfteds/internal/core"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/strategy"
	"fedfteds/internal/tensor"
)

// StrategyNames is the strategy-comparison lineup: every flag-constructible
// strategy at its defaults — the classical overwrite server (with and
// without the proximal client hook) against the FedOpt server optimizers —
// so the comparison covers the server-momentum and adaptivity axes the
// partial-participation literature evaluates. Sharing strategy.Names keeps
// the sweep in lockstep with what Parse accepts.
var StrategyNames = strategy.Names()

// StrategyRow is one strategy's outcome on the shared federation.
type StrategyRow struct {
	// Strategy is the spec the row ran under (a strategy.Parse input).
	Strategy string
	// Hist is the strategy's full run history.
	Hist core.History
}

// StrategyCompareResult compares federated-optimization strategies on one
// federation: accuracy against cumulative client-seconds, the paper's
// learning-efficiency trade-off, now driven by how the server applies the
// aggregate rather than what each client trains on.
type StrategyCompareResult struct {
	// Rows holds one entry per strategy, in input order.
	Rows []StrategyRow
	// NumClients is the federation size.
	NumClients int
}

// RunStrategyCompare runs every strategy spec in specs (nil means the
// standard StrategyNames lineup) on one shared federation with FedFT-EDS
// locals. All strategies see the same clients, model initialization and
// seed; only the strategy differs — a fresh instance is parsed per run so
// stateful server optimizers never leak across rows.
func RunStrategyCompare(env *Env, specs []string) (*StrategyCompareResult, error) {
	if len(specs) == 0 {
		specs = StrategyNames
	}
	numClients := env.Dims.SmallClients
	fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 6464)
	if err != nil {
		return nil, err
	}
	res := &StrategyCompareResult{NumClients: numClients}
	for _, spec := range specs {
		strat, err := strategy.Parse(spec)
		if err != nil {
			return nil, err
		}
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Rounds:         env.Dims.Rounds,
			LocalEpochs:    env.Dims.LocalEpochs,
			LR:             paperLR,
			Momentum:       paperMomentum,
			FinetunePart:   models.FinetuneModerate,
			Selector:       selection.Entropy{Temperature: paperTemperature},
			SelectFraction: 0.5,
			Strategy:       strat,
			// Every strategy shares one seed: the comparison isolates the
			// server-side optimization, not the run randomness.
			Seed: tensor.DeriveSeed(uint64(env.Seed), 0x57A7),
		}
		hist, err := env.RunFL(fmt.Sprintf("strategy-%s-c%d", spec, numClients),
			cfg, global, fed.Clients, fed.Test)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, StrategyRow{Strategy: spec, Hist: hist})
	}
	return res, nil
}

// Render prints the comparison as a table: per strategy the best and final
// accuracy, total simulated client-seconds, and the paper's learning
// efficiency (best accuracy per client-second).
func (r *StrategyCompareResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Strategy comparison: %d clients, FedFT-EDS locals, server-side optimizers\n", r.NumClients)
	fmt.Fprintf(&b, "%-12s %9s %9s %14s %14s\n",
		"strategy", "best acc", "final acc", "client-seconds", "eff (%/s)")
	for _, row := range r.Rows {
		eff, err := row.Hist.LearningEfficiency()
		effStr := "n/a"
		if err == nil {
			effStr = fmt.Sprintf("%.4g", 100*eff)
		}
		fmt.Fprintf(&b, "%-12s %8.2f%% %8.2f%% %14.4g %14s\n",
			row.Strategy,
			100*row.Hist.BestAccuracy, 100*row.Hist.FinalAccuracy,
			row.Hist.TotalTrainSeconds, effStr)
	}
	return b.String()
}
