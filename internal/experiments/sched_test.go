package experiments

import (
	"math"
	"testing"
)

// TestRunSchedCompareSmoke runs the scheduler comparison at smoke scale:
// every policy must produce a full history whose records carry the cohort
// size, policy name, participants and monotone cumulative client-seconds.
func TestRunSchedCompareSmoke(t *testing.T) {
	env, err := NewEnv(ScaleSmoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSchedCompare(env, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(SchedPolicyNames) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(SchedPolicyNames))
	}
	for i, row := range res.Rows {
		if row.Policy != SchedPolicyNames[i] {
			t.Fatalf("row %d policy %q, want %q", i, row.Policy, SchedPolicyNames[i])
		}
		if len(row.Hist.Records) != env.Dims.Rounds {
			t.Fatalf("%s: %d records, want %d", row.Policy, len(row.Hist.Records), env.Dims.Rounds)
		}
		prevCum := 0.0
		for _, rec := range row.Hist.Records {
			if rec.SchedPolicy != row.Policy {
				t.Fatalf("%s round %d: record policy %q", row.Policy, rec.Round, rec.SchedPolicy)
			}
			if rec.CohortSize < 1 || rec.CohortSize > 3 {
				t.Fatalf("%s round %d: cohort size %d, want 1..3", row.Policy, rec.Round, rec.CohortSize)
			}
			if rec.Participants < 1 || rec.Participants > rec.CohortSize {
				t.Fatalf("%s round %d: %d participants of cohort %d", row.Policy, rec.Round, rec.Participants, rec.CohortSize)
			}
			if rec.CumTrainSeconds < prevCum {
				t.Fatalf("%s round %d: cumulative seconds decreased", row.Policy, rec.Round)
			}
			prevCum = rec.CumTrainSeconds
		}
		if math.IsNaN(row.Hist.FinalAccuracy) || row.Hist.FinalAccuracy <= 0 {
			t.Fatalf("%s: final accuracy %v", row.Policy, row.Hist.FinalAccuracy)
		}
	}
	if out := res.Render(); len(out) == 0 {
		t.Fatal("empty render")
	}
}
