package experiments

import (
	"strings"
	"testing"
)

// TestRunStrategyCompare runs the full default lineup at smoke scale: every
// strategy completes, the rows come back in order, and the rendering carries
// the efficiency column.
func TestRunStrategyCompare(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunStrategyCompare(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(StrategyNames) {
		t.Fatalf("%d rows, want %d", len(res.Rows), len(StrategyNames))
	}
	for i, row := range res.Rows {
		if row.Strategy != StrategyNames[i] {
			t.Fatalf("row %d is %q, want %q", i, row.Strategy, StrategyNames[i])
		}
		if len(row.Hist.Records) != env.Dims.Rounds {
			t.Fatalf("%s ran %d rounds, want %d", row.Strategy, len(row.Hist.Records), env.Dims.Rounds)
		}
		if row.Hist.TotalTrainSeconds <= 0 {
			t.Fatalf("%s has no cost accounting", row.Strategy)
		}
	}
	out := res.Render()
	for _, want := range append([]string{"Strategy comparison", "eff (%/s)"}, StrategyNames...) {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestRunStrategyCompareParameterized: an explicit parameterized spec runs
// and is labeled verbatim.
func TestRunStrategyCompareParameterized(t *testing.T) {
	env := smokeEnv(t)
	res, err := RunStrategyCompare(env, []string{"fedadam:lr=0.05,beta1=0.8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Strategy != "fedadam:lr=0.05,beta1=0.8" {
		t.Fatalf("unexpected rows: %+v", res.Rows)
	}
	if _, err := RunStrategyCompare(env, []string{"nope"}); err == nil {
		t.Fatal("unknown strategy spec accepted")
	}
}
