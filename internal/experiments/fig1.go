package experiments

import (
	"fmt"
	"math"

	"fedfteds/internal/metrics"
	"fedfteds/internal/selection"
)

// fig1Bins is the histogram resolution of the entropy-distribution figure.
const fig1Bins = 20

// Fig1Result reproduces the entropy-distribution panel of Fig. 1: the
// per-sample entropy histogram of one client's local data under three
// softmax temperatures.
type Fig1Result struct {
	// Temperatures are the ρ values, in presentation order.
	Temperatures []float64
	// Histograms[i] is the fig1Bins-bucket histogram over normalized entropy
	// [0, 1] (entropy / log C) for Temperatures[i].
	Histograms [][]int
	// Medians[i] is the median normalized entropy for Temperatures[i].
	Medians []float64
	// TailShares[i] is the fraction of samples in the top decile of the
	// entropy range — the "thin high tail" the hardened softmax creates.
	TailShares []float64
}

// RunFig1 computes the entropy distributions using a pretrained model and
// one Dirichlet client's local data, as in the paper.
func RunFig1(env *Env) (*Fig1Result, error) {
	t100, err := env.Target100()
	if err != nil {
		return nil, err
	}
	fed, err := env.BuildFederation(t100, env.Dims.SmallClients, 0.1, 42)
	if err != nil {
		return nil, err
	}
	model, err := env.PretrainedModel(t100, env.Suite.Source)
	if err != nil {
		return nil, err
	}
	local := fed.Clients[0].Data
	maxH := math.Log(float64(t100.Spec.NumClasses))

	res := &Fig1Result{Temperatures: []float64{1.0, 0.5, 0.1}}
	for _, rho := range res.Temperatures {
		ent, err := selection.SampleEntropies(model, local, rho)
		if err != nil {
			return nil, err
		}
		norm := make([]float64, len(ent))
		for i, h := range ent {
			norm[i] = h / maxH
		}
		hist, err := metrics.Histogram(norm, fig1Bins, 0, 1)
		if err != nil {
			return nil, err
		}
		med, err := metrics.Quantile(norm, 0.5)
		if err != nil {
			return nil, err
		}
		var tail int
		for _, v := range norm {
			if v >= 0.9 {
				tail++
			}
		}
		res.Histograms = append(res.Histograms, hist)
		res.Medians = append(res.Medians, med)
		res.TailShares = append(res.TailShares, float64(tail)/float64(len(norm)))
	}
	return res, nil
}

// Render prints the histograms side by side.
func (r *Fig1Result) Render() string {
	header := []string{"entropy bin"}
	for _, rho := range r.Temperatures {
		header = append(header, fmt.Sprintf("ρ=%g", rho))
	}
	tbl := NewTable("Fig. 1 — entropy distribution of one client's local data (normalized entropy, 20 bins)", header...)
	for b := 0; b < fig1Bins; b++ {
		row := []string{fmt.Sprintf("[%.2f,%.2f)", float64(b)/fig1Bins, float64(b+1)/fig1Bins)}
		for ti := range r.Temperatures {
			row = append(row, fmt.Sprintf("%d", r.Histograms[ti][b]))
		}
		tbl.AddRow(row...)
	}
	med := []string{"median"}
	for _, m := range r.Medians {
		med = append(med, F3(m))
	}
	tbl.AddRow(med...)
	return tbl.String()
}
