package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table used by every experiment's Render.
type Table struct {
	// Title is printed above the table.
	Title string

	header []string
	rows   [][]string
}

// NewTable constructs a table with a title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a [0,1] accuracy as a percentage with two decimals.
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", 100*v)
}

// F3 formats a float with three decimals.
func F3(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// Series is a named sequence of per-round values (a learning curve).
type Series struct {
	// Name labels the curve.
	Name string
	// Values holds one value per round; NaN marks unevaluated rounds.
	Values []float64
}

// LastFinite returns the last non-NaN value (or NaN if none).
func (s Series) LastFinite() float64 {
	for i := len(s.Values) - 1; i >= 0; i-- {
		if !math.IsNaN(s.Values[i]) {
			return s.Values[i]
		}
	}
	return math.NaN()
}

// RenderCurves prints one column per series, one row per round, with NaN
// rows skipped — enough to re-plot the paper's figures from stdout.
func RenderCurves(title string, series []Series) string {
	tbl := NewTable(title, append([]string{"round"}, seriesNames(series)...)...)
	maxLen := 0
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	for r := 0; r < maxLen; r++ {
		cells := make([]string, 0, len(series)+1)
		cells = append(cells, fmt.Sprintf("%d", r+1))
		any := false
		for _, s := range series {
			if r < len(s.Values) && !math.IsNaN(s.Values[r]) {
				cells = append(cells, Pct(s.Values[r]))
				any = true
			} else {
				cells = append(cells, "")
			}
		}
		if any {
			tbl.AddRow(cells...)
		}
	}
	return tbl.String()
}

// seriesNames extracts the curve labels.
func seriesNames(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}
