package experiments

import (
	"fmt"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
)

// Table3Cell is one (method, dataset, alpha) outcome of the 100-client
// straggler experiment.
type Table3Cell struct {
	// Method is the paper's label.
	Method string
	// Fn is FedAvg's participating fraction (1 for the FedFT rows).
	Fn float64
	// Pds is the selection fraction.
	Pds float64
	// Dataset and Alpha identify the workload.
	Dataset string
	Alpha   float64
	// BestAccuracy, Curve, TrainSeconds, Efficiency mirror Table2Cell.
	BestAccuracy float64
	Curve        []float64
	TrainSeconds float64
	Efficiency   float64
}

// Table3Result reproduces Table III (and the Fig. 7 efficiency points and
// Figs. 8–9 curves computed from the same runs).
type Table3Result struct {
	// Cells holds all outcomes in paper row order per workload.
	Cells []Table3Cell
}

// table3Methods is the paper's Table III row list.
func table3Methods() []struct {
	Method
	fn  float64
	pds float64
} {
	rows := []struct {
		Method
		fn  float64
		pds float64
	}{
		{Method: Method{Name: "FedAvg w/o pt", Pretrained: false, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1}, fn: 1, pds: 1},
		{Method: Method{Name: "FedAvg 100% c.p.", Pretrained: true, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1}, fn: 1, pds: 1},
		{Method: Method{Name: "FedAvg 20% c.p.", Pretrained: true, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1, Straggler: simtime.FractionParticipation{Fraction: 0.2}}, fn: 0.2, pds: 1},
		{Method: Method{Name: "FedAvg 10% c.p.", Pretrained: true, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1, Straggler: simtime.FractionParticipation{Fraction: 0.1}}, fn: 0.1, pds: 1},
		{Method: Method{Name: "FedFT-RDS (10%)", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Random{}, Fraction: 0.1}, fn: 1, pds: 0.1},
		{Method: Method{Name: "FedFT-EDS (10%)", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: 0.1}, fn: 1, pds: 0.1},
		{Method: Method{Name: "FedFT-ALL", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.All{}, Fraction: 1}, fn: 1, pds: 1},
		{Method: Method{Name: "FedFT-RDS (50%)", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Random{}, Fraction: 0.5}, fn: 1, pds: 0.5},
		{Method: Method{Name: "FedFT-EDS (50%)", Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: 0.5}, fn: 1, pds: 0.5},
	}
	return rows
}

// RunTable3 executes the 100-client straggler experiment.
func RunTable3(env *Env) (*Table3Result, error) {
	t100, err := env.Target100()
	if err != nil {
		return nil, err
	}
	targets := []*data.Domain{env.Suite.Target10, t100}
	res := &Table3Result{}
	for ti, target := range targets {
		for _, alpha := range []float64{0.1, 0.5} {
			fed, err := env.BuildFederation(target, env.Dims.LargeClients, alpha, 7000+int64(ti*1000)+int64(alpha*100))
			if err != nil {
				return nil, err
			}
			for _, row := range table3Methods() {
				hist, err := env.RunMethod(row.Method, fed, target, env.Suite.Source, 3)
				if err != nil {
					return nil, err
				}
				eff, err := hist.LearningEfficiency()
				if err != nil {
					eff = 0
				}
				res.Cells = append(res.Cells, Table3Cell{
					Method:       row.Name,
					Fn:           row.fn,
					Pds:          row.pds,
					Dataset:      target.Spec.Name,
					Alpha:        alpha,
					BestAccuracy: hist.BestAccuracy,
					Curve:        hist.Curve(),
					TrainSeconds: hist.TotalTrainSeconds,
					Efficiency:   eff,
				})
			}
		}
	}
	return res, nil
}

// Get returns the cell for (method, dataset, alpha), or false.
func (r *Table3Result) Get(method, dataset string, alpha float64) (Table3Cell, bool) {
	for _, c := range r.Cells {
		if c.Method == method && c.Dataset == dataset && c.Alpha == alpha {
			return c, true
		}
	}
	return Table3Cell{}, false
}

// Methods returns distinct method labels in first-seen order.
func (r *Table3Result) Methods() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Method] {
			seen[c.Method] = true
			out = append(out, c.Method)
		}
	}
	return out
}

// datasets returns distinct dataset names in first-seen order.
func (r *Table3Result) datasets() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Dataset] {
			seen[c.Dataset] = true
			out = append(out, c.Dataset)
		}
	}
	return out
}

// Render prints the table in the paper's shape.
func (r *Table3Result) Render() string {
	ds := r.datasets()
	header := []string{"Method", "fn", "Pds"}
	for _, d := range ds {
		header = append(header, d+" α=0.1", d+" α=0.5")
	}
	tbl := NewTable("Table III — top-1 accuracy (%) with the large client pool and straggler simulation", header...)
	for _, m := range r.Methods() {
		var fn, pds float64
		for _, c := range r.Cells {
			if c.Method == m {
				fn, pds = c.Fn, c.Pds
				break
			}
		}
		row := []string{m, fmt.Sprintf("%.0f%%", fn*100), fmt.Sprintf("%.0f%%", pds*100)}
		for _, d := range ds {
			for _, alpha := range []float64{0.1, 0.5} {
				if c, ok := r.Get(m, d, alpha); ok {
					row = append(row, Pct(c.BestAccuracy))
				} else {
					row = append(row, "")
				}
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}

// RenderFigure7 prints the 100-client learning-efficiency points (Fig. 7).
func (r *Table3Result) RenderFigure7(dataset string, alpha float64) string {
	tbl := NewTable(fmt.Sprintf("Fig. 7 — learning efficiency at scale, %s Diri(%g)", dataset, alpha),
		"Method", "BestAcc(%)", "TrainSeconds", "Efficiency(%/s)")
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Alpha == alpha {
			tbl.AddRow(c.Method, Pct(c.BestAccuracy), F3(c.TrainSeconds), F3(c.Efficiency))
		}
	}
	return tbl.String()
}

// RenderFigure8 prints the FedAvg-participation vs FedFT-EDS curves (Fig. 8).
func (r *Table3Result) RenderFigure8(dataset string, alpha float64) string {
	keep := map[string]bool{
		"FedAvg w/o pt": true, "FedAvg 100% c.p.": true,
		"FedAvg 20% c.p.": true, "FedAvg 10% c.p.": true,
		"FedFT-EDS (10%)": true,
	}
	var series []Series
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Alpha == alpha && keep[c.Method] {
			series = append(series, Series{Name: c.Method, Values: c.Curve})
		}
	}
	return RenderCurves(fmt.Sprintf("Fig. 8 — participation curves, %s Diri(%g)", dataset, alpha), series)
}

// RenderFigure9 prints the selection-fraction curves (Fig. 9).
func (r *Table3Result) RenderFigure9(dataset string, alpha float64) string {
	keep := map[string]bool{
		"FedFT-RDS (10%)": true, "FedFT-EDS (10%)": true,
		"FedFT-RDS (50%)": true, "FedFT-EDS (50%)": true,
		"FedFT-ALL": true,
	}
	var series []Series
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Alpha == alpha && keep[c.Method] {
			series = append(series, Series{Name: c.Method, Values: c.Curve})
		}
	}
	return RenderCurves(fmt.Sprintf("Fig. 9 — selection-fraction curves, %s Diri(%g)", dataset, alpha), series)
}
