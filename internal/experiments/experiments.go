// Package experiments assembles the paper's evaluation: one constructor per
// table and figure, sized by a fast/full Scale, all deterministic from a
// single seed. Each experiment returns a typed result with both the raw
// numbers (consumed by tests and benches) and a Render method that prints
// rows shaped like the paper's artifact.
//
// The per-experiment index lives in DESIGN.md; paper-vs-measured shape checks
// live in EXPERIMENTS.md.
package experiments

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"fedfteds/internal/ckpt"
	"fedfteds/internal/core"
	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/partition"
	"fedfteds/internal/seeds"
	"fedfteds/internal/selection"
	"fedfteds/internal/simtime"
	"fedfteds/internal/tensor"
)

// ErrExperiment reports an invalid experiment configuration.
var ErrExperiment = errors.New("experiments: invalid configuration")

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleSmoke is minimal sizing for unit tests: every experiment runs in
	// well under a second apiece; orderings are not meaningful.
	ScaleSmoke Scale = iota + 1
	// ScaleFast is sized for benchmarks and CI: fewer rounds, clients and
	// samples. Robust result shapes (method orderings) are preserved.
	ScaleFast
	// ScaleFull approximates the paper's setup: 50 rounds, 10 or 100
	// clients, E=5 local epochs.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleSmoke:
		return "smoke"
	case ScaleFast:
		return "fast"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts a CLI flag value into a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "smoke":
		return ScaleSmoke, nil
	case "fast":
		return ScaleFast, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("%w: scale %q (want smoke, fast or full)", ErrExperiment, s)
	}
}

// Dimensions holds the scale-dependent sizing.
type Dimensions struct {
	Rounds           int
	LocalEpochs      int
	SmallClients     int // the 10-client close-domain scenario
	LargeClients     int // the 100-client straggler scenario
	SamplesPerClient int
	// SmallClientSamples is the per-client sample count in the small
	// (10-client, Table II) scenario, where the paper's clients are
	// data-rich; zero falls back to SamplesPerClient.
	SmallClientSamples int
	TestSamples        int
	PretrainSamples    int
	PretrainEpochs     int
	Target100Classes   int // the "CIFAR-100" analogue's class count at this scale
}

// dims returns the sizing for a scale.
func dims(s Scale) (Dimensions, error) {
	switch s {
	case ScaleSmoke:
		return Dimensions{
			Rounds:             3,
			LocalEpochs:        2,
			SmallClients:       4,
			LargeClients:       8,
			SamplesPerClient:   40,
			SmallClientSamples: 40,
			TestSamples:        200,
			PretrainSamples:    800,
			PretrainEpochs:     4,
			Target100Classes:   8,
		}, nil
	case ScaleFast:
		return Dimensions{
			Rounds:             12,
			LocalEpochs:        6,
			SmallClients:       8,
			LargeClients:       24,
			SamplesPerClient:   56,
			SmallClientSamples: 80,
			TestSamples:        600,
			PretrainSamples:    5000,
			PretrainEpochs:     15,
			Target100Classes:   20,
		}, nil
	case ScaleFull:
		// Sized for a single-core pure-Go run (~30 minutes for the complete
		// sweep). The paper's exact counts (50 rounds, 100 clients, 500
		// samples/client on GPU) are reachable by editing these dimensions;
		// every result shape reported in EXPERIMENTS.md is stable from this
		// sizing up.
		return Dimensions{
			Rounds:             24,
			LocalEpochs:        5,
			SmallClients:       10,
			LargeClients:       40,
			SamplesPerClient:   100,
			SmallClientSamples: 240,
			TestSamples:        1000,
			PretrainSamples:    8000,
			PretrainEpochs:     15,
			Target100Classes:   50,
		}, nil
	default:
		return Dimensions{}, fmt.Errorf("%w: scale %v", ErrExperiment, s)
	}
}

// Standard experiment constants shared with the paper.
const (
	// paperTemperature is the hardened-softmax ρ (paper: 0.1).
	paperTemperature = 0.1
	// paperLR and paperMomentum are the client SGD settings (paper: 0.1/0.5).
	paperLR       = 0.05
	paperMomentum = 0.5
	// paperProxMu is the FedProx proximal coefficient.
	paperProxMu = 0.1
	// deviceMedianFLOPS and deviceSigma define the simulated device
	// population (lognormal around 1 GFLOP/s).
	deviceMedianFLOPS = 1e9
	deviceSigma       = 0.35
	// mlpHidden is the experiment model's hidden width.
	mlpHidden = 64
)

// Env is the shared experimental environment: domains, sizing and cached
// pretrained feature extractors.
type Env struct {
	// Scale echoes the construction scale.
	Scale Scale
	// Dims is the scale's sizing.
	Dims Dimensions
	// Suite holds the synthetic domains.
	Suite *data.StandardSuite
	// Seed drives every stochastic component.
	Seed int64

	pretrained map[string]*models.Model // cached source-pretrained models, by domain name
	target100  *data.Domain             // scale-sized "CIFAR-100" analogue, lazily built
	ckptPolicy CheckpointPolicy         // artifact-store policy applied to every RunFL
}

// CheckpointPolicy turns the experiment harness's checkpoint directory into
// an artifact store: every federated run an experiment launches checkpoints
// into its own deterministic subdirectory of Dir, and with Resume set a
// re-launched sweep reloads finished runs instantly (and continues
// interrupted ones mid-run) instead of re-training them. Because resumption
// is bit-identical, a resumed sweep's tables and figures match an
// uninterrupted sweep's exactly; bumping a run's round budget extends the
// stored run rather than restarting it.
type CheckpointPolicy struct {
	// Dir is the artifact-store root; empty disables checkpointing.
	Dir string
	// Every is the per-run checkpoint interval in rounds (default 1).
	Every int
	// Resume reloads each run's latest stored checkpoint before training.
	Resume bool
}

// SetCheckpointPolicy installs the artifact-store policy for subsequent
// experiment runs.
func (e *Env) SetCheckpointPolicy(p CheckpointPolicy) error {
	if p.Every < 0 {
		return fmt.Errorf("%w: checkpoint interval %d is negative", ErrExperiment, p.Every)
	}
	if p.Resume && p.Dir == "" {
		return fmt.Errorf("%w: resume requested without a checkpoint directory", ErrExperiment)
	}
	e.ckptPolicy = p
	return nil
}

// sanitizeRunName maps an arbitrary run name to a safe directory name.
func sanitizeRunName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// RunFL builds a runner for one federated configuration and executes it
// under the environment's checkpoint policy. runName must uniquely identify
// the run within a sweep (it keys the run's artifact subdirectory); every
// experiment launches its runs through this helper so the whole sweep shares
// one resume discipline.
func (e *Env) RunFL(runName string, cfg core.Config, global *models.Model, clients []*core.Client, test *data.Dataset) (core.History, error) {
	if e.ckptPolicy.Dir != "" {
		cfg.CheckpointDir = filepath.Join(e.ckptPolicy.Dir, sanitizeRunName(runName))
		cfg.CheckpointEvery = e.ckptPolicy.Every
	}
	runner, err := core.NewRunner(cfg, global, clients, test)
	if err != nil {
		return core.History{}, fmt.Errorf("experiments: %s: %w", runName, err)
	}
	if e.ckptPolicy.Resume && cfg.CheckpointDir != "" {
		if _, err := runner.ResumeLatest(); err != nil && !errors.Is(err, ckpt.ErrNoCheckpoint) {
			return core.History{}, fmt.Errorf("experiments: resume %s: %w", runName, err)
		}
	}
	hist, err := runner.Run()
	if err != nil {
		return core.History{}, fmt.Errorf("experiments: %s: run: %w", runName, err)
	}
	return hist, nil
}

// NewEnv builds the experiment environment.
func NewEnv(scale Scale, seed int64) (*Env, error) {
	d, err := dims(scale)
	if err != nil {
		return nil, err
	}
	suite, err := data.NewStandardSuite(seed)
	if err != nil {
		return nil, err
	}
	return &Env{
		Scale:      scale,
		Dims:       d,
		Suite:      suite,
		Seed:       seed,
		pretrained: make(map[string]*models.Model),
	}, nil
}

// Target100 returns the "CIFAR-100" analogue sized for the scale: the full
// 100-class domain at ScaleFull, a 20-class variant at ScaleFast (the class
// count is the only difference; generative parameters match the suite's).
func (e *Env) Target100() (*data.Domain, error) {
	if e.target100 != nil {
		return e.target100, nil
	}
	if e.Dims.Target100Classes == e.Suite.Target100.Spec.NumClasses {
		e.target100 = e.Suite.Target100
		return e.target100, nil
	}
	spec := e.Suite.Target100.Spec
	spec.NumClasses = e.Dims.Target100Classes
	d, err := data.NewDomain(e.Suite.Universe, spec)
	if err != nil {
		return nil, err
	}
	e.target100 = d
	return d, nil
}

// modelSpec returns the experiment model specification for a target domain.
func (e *Env) modelSpec(numClasses int) models.Spec {
	return models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{e.Suite.Universe.ObsDim},
		NumClasses: numClasses,
		Hidden:     mlpHidden,
		InitSeed:   e.Seed + 101,
	}
}

// FreshModel builds an untrained model for a target domain.
func (e *Env) FreshModel(target *data.Domain) (*models.Model, error) {
	return models.Build(e.modelSpec(target.Spec.NumClasses))
}

// PretrainedModel returns a model for target whose feature extractor was
// pretrained on source. The expensive source training is cached per source
// domain; each call returns an independent copy with a fresh classifier.
func (e *Env) PretrainedModel(target, source *data.Domain) (*models.Model, error) {
	srcModel, ok := e.pretrained[source.Spec.Name]
	if !ok {
		rng := seeds.Source(e.Seed + 7)
		srcData, err := source.GenerateBalanced(e.Dims.PretrainSamples, rng)
		if err != nil {
			return nil, err
		}
		srcModel, err = models.Build(e.modelSpec(source.Spec.NumClasses))
		if err != nil {
			return nil, err
		}
		if _, err := core.Pretrain(srcModel, srcData, core.CentralConfig{
			Epochs:   e.Dims.PretrainEpochs,
			LR:       paperLR,
			Momentum: paperMomentum,
			Seed:     e.Seed + 8,
		}); err != nil {
			return nil, err
		}
		e.pretrained[source.Spec.Name] = srcModel
	}
	target2, err := models.Build(e.modelSpec(target.Spec.NumClasses))
	if err != nil {
		return nil, err
	}
	extractor := []string{models.GroupLow, models.GroupMid, models.GroupUp}
	if err := target2.CopyGroupStateFrom(srcModel, extractor); err != nil {
		return nil, err
	}
	return target2, nil
}

// Federation is a built client population plus datasets.
type Federation struct {
	// Clients holds the per-client datasets and device profiles.
	Clients []*core.Client
	// Pool is the union of all client data (the centralized training set).
	Pool *data.Dataset
	// Test is the held-out evaluation set.
	Test *data.Dataset
	// Alpha echoes the Dirichlet concentration used.
	Alpha float64
}

// BuildFederation generates a pool from the domain, partitions it with
// Diri(alpha) and attaches heterogeneous devices. seedSalt distinguishes
// federations built from the same Env.
//
// The small (Table II) scenario models data-rich clients; the large
// (Table III) scenario models many data-poor ones, as in the paper.
func (e *Env) BuildFederation(domain *data.Domain, numClients int, alpha float64, seedSalt int64) (*Federation, error) {
	samplesPerClient := e.Dims.SamplesPerClient
	if numClients <= e.Dims.SmallClients && e.Dims.SmallClientSamples > 0 {
		samplesPerClient = e.Dims.SmallClientSamples
	}
	return e.BuildFederationSized(domain, numClients, samplesPerClient, alpha, seedSalt)
}

// BuildFederationSized is BuildFederation with an explicit per-client sample
// count, for experiments that need to control data scarcity directly
// (Table I studies pretraining, whose benefit concentrates in the
// data-scarce regime).
func (e *Env) BuildFederationSized(domain *data.Domain, numClients, samplesPerClient int, alpha float64, seedSalt int64) (*Federation, error) {
	if numClients <= 0 || samplesPerClient <= 0 {
		return nil, fmt.Errorf("%w: %d clients × %d samples", ErrExperiment, numClients, samplesPerClient)
	}
	rng := seeds.Source(e.Seed + 1000 + seedSalt)
	pool, err := domain.GenerateBalanced(numClients*samplesPerClient, rng)
	if err != nil {
		return nil, err
	}
	test, err := domain.GenerateBalanced(e.Dims.TestSamples, rng)
	if err != nil {
		return nil, err
	}
	minSize := samplesPerClient / 10
	if minSize < 5 {
		minSize = 5
	}
	parts, err := partition.Dirichlet(pool.Y, numClients, alpha, minSize, rng)
	if err != nil {
		return nil, err
	}
	devices, err := simtime.NewHeterogeneousDevices(numClients, deviceMedianFLOPS, deviceSigma, rng)
	if err != nil {
		return nil, err
	}
	clients := make([]*core.Client, numClients)
	for i, idxs := range parts {
		ds, err := pool.Subset(idxs)
		if err != nil {
			return nil, err
		}
		clients[i] = &core.Client{ID: i, Data: ds, Device: devices[i]}
	}
	return &Federation{Clients: clients, Pool: pool, Test: test, Alpha: alpha}, nil
}

// Method describes one named FL configuration of the paper's comparison.
type Method struct {
	// Name is the paper's label, e.g. "FedFT-EDS (10%)".
	Name string
	// Pretrained selects whether the global model starts from the pretrained
	// feature extractor.
	Pretrained bool
	// Part is the partial-training setting.
	Part models.FinetunePart
	// Selector and Fraction define the data selection.
	Selector selection.Selector
	// Fraction is P_ds.
	Fraction float64
	// ProxMu enables FedProx when positive.
	ProxMu float64
	// Straggler overrides full participation when non-nil.
	Straggler simtime.StragglerPolicy
}

// standardMethods returns the paper's Table II method list.
func standardMethods(pds float64) []Method {
	return []Method{
		{Name: "FedAvg w/o pt", Pretrained: false, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1},
		{Name: "FedAvg", Pretrained: true, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1},
		{Name: fmt.Sprintf("FedAvg-RDS (%.0f%%)", pds*100), Pretrained: true, Part: models.FinetuneFull, Selector: selection.Random{}, Fraction: pds},
		{Name: "FedProx", Pretrained: true, Part: models.FinetuneFull, Selector: selection.All{}, Fraction: 1, ProxMu: paperProxMu},
		{Name: fmt.Sprintf("FedProx-RDS (%.0f%%)", pds*100), Pretrained: true, Part: models.FinetuneFull, Selector: selection.Random{}, Fraction: pds, ProxMu: paperProxMu},
		{Name: fmt.Sprintf("FedFT-RDS (%.0f%%)", pds*100), Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Random{}, Fraction: pds},
		{Name: fmt.Sprintf("FedFT-EDS (%.0f%%)", pds*100), Pretrained: true, Part: models.FinetuneModerate, Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: pds},
	}
}

// RunMethod executes one method on a federation and returns its history.
func (e *Env) RunMethod(m Method, fed *Federation, target, source *data.Domain, seedSalt int64) (core.History, error) {
	var (
		global *models.Model
		err    error
	)
	if m.Pretrained {
		global, err = e.PretrainedModel(target, source)
	} else {
		global, err = e.FreshModel(target)
	}
	if err != nil {
		return core.History{}, fmt.Errorf("experiments: %s: model: %w", m.Name, err)
	}
	cfg := core.Config{
		Rounds:         e.Dims.Rounds,
		LocalEpochs:    e.Dims.LocalEpochs,
		LR:             paperLR,
		Momentum:       paperMomentum,
		ProxMu:         m.ProxMu,
		FinetunePart:   m.Part,
		Selector:       m.Selector,
		SelectFraction: m.Fraction,
		Straggler:      m.Straggler,
		Seed:           tensor.DeriveSeed(uint64(e.Seed), uint64(seedSalt), hashName(m.Name)),
	}
	// The run name keys the checkpoint artifact store, so it carries every
	// axis that distinguishes otherwise identically-seeded runs: target and
	// source domains, federation shape, method and salt.
	runName := fmt.Sprintf("%s-from-%s-a%g-c%d-n%d-%s-s%d",
		target.Spec.Name, source.Spec.Name, fed.Alpha, len(fed.Clients), fed.Pool.Len(), m.Name, seedSalt)
	return e.RunFL(runName, cfg, global, fed.Clients, fed.Test)
}

// RunCentralized trains the centralized upper bound on the federation pool.
func (e *Env) RunCentralized(fed *Federation, target, source *data.Domain) (core.CentralHistory, error) {
	global, err := e.PretrainedModel(target, source)
	if err != nil {
		return core.CentralHistory{}, err
	}
	// The centralized baseline trains the full model on all pooled data for
	// as many epochs as the federated runs take rounds.
	if err := global.SetFinetunePart(models.FinetuneFull); err != nil {
		return core.CentralHistory{}, err
	}
	return core.TrainCentralized(global, fed.Pool, fed.Test, core.CentralConfig{
		Epochs:   e.Dims.Rounds,
		LR:       paperLR,
		Momentum: paperMomentum,
		Seed:     e.Seed + 31,
	})
}

// hashName derives a stable salt from a method name.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
