package experiments

import (
	"fmt"

	"fedfteds/internal/core"
	"fedfteds/internal/data"
)

// table2Pds is the close-domain selection fraction (paper: 10%).
const table2Pds = 0.10

// Table2Cell is one (method, dataset, alpha) outcome.
type Table2Cell struct {
	// Method is the paper's method label.
	Method string
	// Dataset names the target domain.
	Dataset string
	// Alpha is the Dirichlet concentration.
	Alpha float64
	// BestAccuracy is the best test accuracy over rounds.
	BestAccuracy float64
	// Curve is the per-round accuracy (Fig. 5 input).
	Curve []float64
	// TrainSeconds is total simulated client compute (Fig. 6 input).
	TrainSeconds float64
	// Efficiency is accuracy-percent per training second (Fig. 6).
	Efficiency float64
	// UplinkBytes is the total client→server traffic.
	UplinkBytes int64
}

// Table2Result reproduces Table II (and carries the Fig. 5 curves and the
// Fig. 6 learning-efficiency points computed from the same runs).
type Table2Result struct {
	// Cells holds all (method, dataset, alpha) outcomes, methods in paper
	// order, centralized last.
	Cells []Table2Cell
}

// RunTable2 executes the close-domain comparison.
func RunTable2(env *Env) (*Table2Result, error) {
	t100, err := env.Target100()
	if err != nil {
		return nil, err
	}
	targets := []*data.Domain{env.Suite.Target10, t100}
	res := &Table2Result{}
	for ti, target := range targets {
		for _, alpha := range []float64{0.1, 0.5} {
			fed, err := env.BuildFederation(target, env.Dims.SmallClients, alpha, int64(ti*1000)+int64(alpha*100))
			if err != nil {
				return nil, err
			}
			for _, m := range standardMethods(table2Pds) {
				hist, err := env.RunMethod(m, fed, target, env.Suite.Source, 2)
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, newTable2Cell(m.Name, target, alpha, hist))
			}
			central, err := env.RunCentralized(fed, target, env.Suite.Source)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Table2Cell{
				Method:       "Centralised",
				Dataset:      target.Spec.Name,
				Alpha:        alpha,
				BestAccuracy: central.BestAccuracy,
				Curve:        central.TestAccuracies,
			})
		}
	}
	return res, nil
}

// newTable2Cell converts a run history into a cell.
func newTable2Cell(method string, target *data.Domain, alpha float64, hist core.History) Table2Cell {
	eff, err := hist.LearningEfficiency()
	if err != nil {
		eff = 0
	}
	return Table2Cell{
		Method:       method,
		Dataset:      target.Spec.Name,
		Alpha:        alpha,
		BestAccuracy: hist.BestAccuracy,
		Curve:        hist.Curve(),
		TrainSeconds: hist.TotalTrainSeconds,
		Efficiency:   eff,
		UplinkBytes:  hist.TotalUplinkBytes,
	}
}

// Get returns the cell for (method, dataset, alpha), or false.
func (r *Table2Result) Get(method, dataset string, alpha float64) (Table2Cell, bool) {
	for _, c := range r.Cells {
		if c.Method == method && c.Dataset == dataset && c.Alpha == alpha {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// Methods returns the distinct method labels in first-seen order.
func (r *Table2Result) Methods() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Method] {
			seen[c.Method] = true
			out = append(out, c.Method)
		}
	}
	return out
}

// datasets returns the distinct dataset names in first-seen order.
func (r *Table2Result) datasets() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Dataset] {
			seen[c.Dataset] = true
			out = append(out, c.Dataset)
		}
	}
	return out
}

// Render prints the table in the paper's shape.
func (r *Table2Result) Render() string {
	ds := r.datasets()
	header := []string{"Method"}
	for _, d := range ds {
		header = append(header, d+" α=0.1", d+" α=0.5")
	}
	tbl := NewTable("Table II — global model top-1 accuracy (%), full participation", header...)
	for _, m := range r.Methods() {
		row := []string{m}
		for _, d := range ds {
			for _, alpha := range []float64{0.1, 0.5} {
				if c, ok := r.Get(m, d, alpha); ok {
					row = append(row, Pct(c.BestAccuracy))
				} else {
					row = append(row, "")
				}
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}

// RenderFigure5 prints the learning curves (Fig. 5) for one dataset/alpha.
func (r *Table2Result) RenderFigure5(dataset string, alpha float64) string {
	var series []Series
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Alpha == alpha {
			series = append(series, Series{Name: c.Method, Values: c.Curve})
		}
	}
	return RenderCurves(fmt.Sprintf("Fig. 5 — learning curves, %s Diri(%g)", dataset, alpha), series)
}

// RenderFigure6 prints the learning-efficiency scatter (Fig. 6) for one
// dataset/alpha: accuracy vs accuracy-per-training-second.
func (r *Table2Result) RenderFigure6(dataset string, alpha float64) string {
	tbl := NewTable(fmt.Sprintf("Fig. 6 — learning efficiency, %s Diri(%g)", dataset, alpha),
		"Method", "BestAcc(%)", "TrainSeconds", "Efficiency(%/s)")
	for _, c := range r.Cells {
		if c.Dataset == dataset && c.Alpha == alpha && c.Method != "Centralised" {
			tbl.AddRow(c.Method, Pct(c.BestAccuracy), F3(c.TrainSeconds), F3(c.Efficiency))
		}
	}
	return tbl.String()
}
