package experiments

import (
	"fedfteds/internal/core"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
)

// The ablation experiments cover the design decisions DESIGN.md calls out
// beyond the paper's own figures: sample-level vs batch-level entropy,
// aggregation weighting, and the acquisition function.

// AblationRow is one named configuration's outcome.
type AblationRow struct {
	// Name identifies the configuration.
	Name string
	// BestAccuracy is the best test accuracy.
	BestAccuracy float64
	// TrainSeconds is the total simulated client time.
	TrainSeconds float64
}

// AblationResult is a list of compared configurations.
type AblationResult struct {
	// Title names the ablation.
	Title string
	// Rows holds the outcomes in definition order.
	Rows []AblationRow
}

// Get returns the row with the given name, or false.
func (r *AblationResult) Get(name string) (AblationRow, bool) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, true
		}
	}
	return AblationRow{}, false
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	tbl := NewTable(r.Title, "Configuration", "BestAcc(%)", "TrainSeconds")
	for _, row := range r.Rows {
		tbl.AddRow(row.Name, Pct(row.BestAccuracy), F3(row.TrainSeconds))
	}
	return tbl.String()
}

// RunAblationBatchEntropy compares the paper's sample-level entropy
// selection against batch-level entropy (FedAvg-BE style), which the paper
// argues masks per-sample utility.
func RunAblationBatchEntropy(env *Env) (*AblationResult, error) {
	target := env.Suite.Target10
	fed, err := env.BuildFederation(target, env.Dims.SmallClients, 0.1, 20100)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — sample-level vs batch-level entropy selection (Pds=50%, Diri(0.1))"}
	configs := []Method{
		{Name: "sample-level EDS", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: 0.5},
		{Name: "batch-level EDS", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.BatchEntropy{Temperature: paperTemperature, BatchSize: 8}, Fraction: 0.5},
		{Name: "RDS", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Random{}, Fraction: 0.5},
	}
	for _, m := range configs {
		hist, err := env.RunMethod(m, fed, target, env.Suite.Source, 20)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Name: m.Name, BestAccuracy: hist.BestAccuracy, TrainSeconds: hist.TotalTrainSeconds,
		})
	}
	return res, nil
}

// RunAblationAggWeighting compares the paper's |D_select| aggregation
// weighting (Eq. 5) against full-local-size and uniform weighting.
func RunAblationAggWeighting(env *Env) (*AblationResult, error) {
	target := env.Suite.Target10
	fed, err := env.BuildFederation(target, env.Dims.SmallClients, 0.1, 20200)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — aggregation weighting p_k (FedFT-EDS 50%, Diri(0.1))"}
	for _, w := range []core.AggWeighting{core.WeightBySelected, core.WeightByLocalSize, core.WeightUniform} {
		global, err := env.PretrainedModel(target, env.Suite.Source)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Rounds:         env.Dims.Rounds,
			LocalEpochs:    env.Dims.LocalEpochs,
			LR:             paperLR,
			Momentum:       paperMomentum,
			FinetunePart:   models.FinetuneModerate,
			Selector:       selection.Entropy{Temperature: paperTemperature},
			SelectFraction: 0.5,
			AggWeighting:   w,
			Seed:           env.Seed + 21,
		}
		hist, err := env.RunFL("ablation-aggweight-"+w.String(), cfg, global, fed.Clients, fed.Test)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Name: w.String(), BestAccuracy: hist.BestAccuracy, TrainSeconds: hist.TotalTrainSeconds,
		})
	}
	return res, nil
}

// RunAblationAcquisition compares entropy against the classical margin and
// least-confidence acquisition functions under the FedFT setting.
func RunAblationAcquisition(env *Env) (*AblationResult, error) {
	target := env.Suite.Target10
	fed, err := env.BuildFederation(target, env.Dims.SmallClients, 0.1, 20300)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — acquisition function (Pds=50%, Diri(0.1))"}
	configs := []Method{
		{Name: "entropy (hardened ρ=0.1)", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Entropy{Temperature: paperTemperature}, Fraction: 0.5},
		{Name: "entropy (ρ=1)", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Entropy{Temperature: 1.0}, Fraction: 0.5},
		{Name: "margin", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Margin{}, Fraction: 0.5},
		{Name: "least-confidence", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.LeastConfidence{}, Fraction: 0.5},
		{Name: "gradient-norm", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.GradNorm{}, Fraction: 0.5},
		{Name: "random", Pretrained: true, Part: models.FinetuneModerate,
			Selector: selection.Random{}, Fraction: 0.5},
	}
	for _, m := range configs {
		hist, err := env.RunMethod(m, fed, target, env.Suite.Source, 22)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Name: m.Name, BestAccuracy: hist.BestAccuracy, TrainSeconds: hist.TotalTrainSeconds,
		})
	}
	return res, nil
}
