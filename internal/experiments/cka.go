package experiments

import (
	"fmt"

	"fedfteds/internal/core"
	"fedfteds/internal/metrics"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/tensor"
)

// ckaProbeSamples is the number of test samples used to extract
// representations for CKA.
const ckaProbeSamples = 128

// CKAResult reproduces Figs. 2–4: pairwise CKA similarity between
// client-updated models at three layer levels, with and without pretraining.
type CKAResult struct {
	// Alpha is the Dirichlet concentration of the underlying federation.
	Alpha float64
	// Layers are the probed layer levels, bottom to top.
	Layers []string
	// Heatmaps[pretrained][layer] is the clients×clients CKA matrix.
	// Index 0 is without pretraining, 1 with pretraining.
	Heatmaps [2]map[string][][]float64
	// Averages[pretrained][layer] is the mean off-diagonal CKA (Fig. 4).
	Averages [2]map[string]float64
}

// RunCKA executes the model-shift study for one heterogeneity level:
// Fig. 2 is alpha=0.1, Fig. 3 is alpha=0.5, Fig. 4 uses the averages.
func RunCKA(env *Env, alpha float64) (*CKAResult, error) {
	target := env.Suite.Target10
	fed, err := env.BuildFederation(target, env.Dims.SmallClients, alpha, 5000+int64(alpha*100))
	if err != nil {
		return nil, err
	}
	probeN := ckaProbeSamples
	if probeN > fed.Test.Len() {
		probeN = fed.Test.Len()
	}
	probe, _, err := fed.Test.Split(probeN)
	if err != nil {
		return nil, err
	}

	res := &CKAResult{
		Alpha:  alpha,
		Layers: []string{models.GroupLow, models.GroupMid, models.GroupUp},
	}
	for pi, pretrained := range []bool{false, true} {
		var global *models.Model
		if pretrained {
			global, err = env.PretrainedModel(target, env.Suite.Source)
		} else {
			global, err = env.FreshModel(target)
		}
		if err != nil {
			return nil, err
		}
		// One round of full local training on every client, as in the paper:
		// CKA compares the locally-updated (not yet aggregated) models.
		cfg := core.Config{
			Rounds:      1,
			LocalEpochs: env.Dims.LocalEpochs,
			LR:          paperLR,
			Momentum:    paperMomentum,
			Selector:    selection.All{},
			Seed:        env.Seed + 51,
		}
		cfg, err := core.NewLocalConfig(cfg)
		if err != nil {
			return nil, err
		}
		// Collect per-client representations at each layer level.
		reps := make(map[string][]*tensor.Tensor, len(res.Layers))
		for _, cl := range fed.Clients {
			out, err := core.LocalUpdate(cfg, global, cl, 1)
			if err != nil {
				return nil, err
			}
			updated, err := global.Clone()
			if err != nil {
				return nil, err
			}
			if err := loadState(updated, out.State); err != nil {
				return nil, err
			}
			acts := updated.ForwardCollectGroups(probe.X, false)
			for _, layer := range res.Layers {
				reps[layer] = append(reps[layer], acts[layer])
			}
		}
		res.Heatmaps[pi] = make(map[string][][]float64, len(res.Layers))
		res.Averages[pi] = make(map[string]float64, len(res.Layers))
		for _, layer := range res.Layers {
			m, err := metrics.PairwiseCKA(reps[layer])
			if err != nil {
				return nil, fmt.Errorf("experiments: CKA at %s: %w", layer, err)
			}
			res.Heatmaps[pi][layer] = m
			res.Averages[pi][layer] = metrics.MeanOffDiagonal(m)
		}
	}
	return res, nil
}

// loadState writes a LocalUpdate's returned state (full-model training ⇒
// all groups) back into a model clone.
func loadState(m *models.Model, state []*tensor.Tensor) error {
	dst, err := m.GroupStateTensors(m.TrainableGroupNames())
	if err != nil {
		return err
	}
	if len(dst) != len(state) {
		return fmt.Errorf("experiments: state mismatch: %d vs %d tensors", len(dst), len(state))
	}
	for i := range dst {
		if err := dst[i].CopyFrom(state[i]); err != nil {
			return err
		}
	}
	return nil
}

// Render prints the heatmaps (Figs. 2/3) and the averaged bars (Fig. 4
// contribution for this alpha).
func (r *CKAResult) Render() string {
	out := ""
	labels := []string{"w/o pretrain", "pretrain"}
	for pi, label := range labels {
		for _, layer := range r.Layers {
			tbl := NewTable(fmt.Sprintf("CKA heatmap — Diri(%g), %s, layer %s", r.Alpha, label, layer),
				append([]string{"client"}, clientHeaders(len(r.Heatmaps[pi][layer]))...)...)
			for i, row := range r.Heatmaps[pi][layer] {
				cells := []string{fmt.Sprintf("%d", i)}
				for _, v := range row {
					cells = append(cells, F3(v))
				}
				tbl.AddRow(cells...)
			}
			out += tbl.String() + "\n"
		}
	}
	avg := NewTable(fmt.Sprintf("Fig. 4 — averaged CKA similarity, Diri(%g)", r.Alpha),
		"layer", "w/o pretrain", "pretrain")
	for _, layer := range r.Layers {
		avg.AddRow(layer, F3(r.Averages[0][layer]), F3(r.Averages[1][layer]))
	}
	return out + avg.String()
}

// clientHeaders builds "0".."n-1" column labels.
func clientHeaders(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}
