package experiments

import (
	"fmt"
	"strings"

	"fedfteds/internal/core"
	"fedfteds/internal/device"
	"fedfteds/internal/models"
	"fedfteds/internal/selection"
	"fedfteds/internal/tensor"
)

// TierDistSpecs is the tier-sweep lineup: the homogeneous federations from
// full capability down to the most constrained tier, then a paper-style
// heterogeneous mix. The full:1 row is the untiered baseline in disguise —
// the full tier's mask covers every group, so it reproduces the legacy run
// bit for bit — and the sweep reads as "what does each capability class cost
// in accuracy, compute and uplink".
var TierDistSpecs = []string{"full:1", "high:1", "mid:1", "low:1", "low:1,mid:2,full:1"}

// TierRow is one tier distribution's outcome on the shared federation.
type TierRow struct {
	// Spec is the distribution the row ran under (a device.ParseDistribution
	// input, canonicalized).
	Spec string
	// Mix renders the realized assignment, e.g. "low×2 mid×1 full×1".
	Mix string
	// Hist is the run's full history.
	Hist core.History
}

// TierCompareResult compares device-tier distributions on one federation:
// per-tier accuracy (the homogeneous rows), straggler behavior (total
// simulated client-seconds shrink with the tier's compute factor and layer
// mask), and the uplink bytes partial training saves.
type TierCompareResult struct {
	// Rows holds one entry per distribution, in input order.
	Rows []TierRow
	// NumClients is the federation size.
	NumClients int
}

// RunTiers runs every tier-distribution spec in specs (nil means the
// standard TierDistSpecs lineup) on one shared federation with FedFT-EDS
// locals. All rows see the same clients, model initialization and seed; only
// the tier distribution differs. Each client's simulated compute rate is
// scaled by its tier's FLOPSFactor — the same deterministic assignment the
// Runner derives — so low tiers are slow and partially trained, exactly the
// heterogeneity the per-layer aggregation is for.
func RunTiers(env *Env, specs []string) (*TierCompareResult, error) {
	if len(specs) == 0 {
		specs = TierDistSpecs
	}
	numClients := env.Dims.SmallClients
	// Every row shares one seed: the comparison isolates the tier
	// distribution, not the run randomness.
	seed := tensor.DeriveSeed(uint64(env.Seed), 0x71E5)
	res := &TierCompareResult{NumClients: numClients}
	for _, spec := range specs {
		dist, err := device.ParseDistribution(spec)
		if err != nil {
			return nil, err
		}
		fed, err := env.BuildFederation(env.Suite.Target10, numClients, 0.1, 7272)
		if err != nil {
			return nil, err
		}
		// Scale each client's device by its tier's compute factor, mirroring
		// the Runner's deterministic tier assignment. The federation is
		// rebuilt per row, so rows never see each other's scaling.
		assign := dist.Assign(numClients, seed)
		for i, cl := range fed.Clients {
			prof, err := device.Lookup(assign[i])
			if err != nil {
				return nil, err
			}
			cl.Device.FLOPSRate *= prof.FLOPSFactor
		}
		global, err := env.PretrainedModel(env.Suite.Target10, env.Suite.Source)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Rounds:         env.Dims.Rounds,
			LocalEpochs:    env.Dims.LocalEpochs,
			LR:             paperLR,
			Momentum:       paperMomentum,
			FinetunePart:   models.FinetuneModerate,
			Selector:       selection.Entropy{Temperature: paperTemperature},
			SelectFraction: 0.5,
			TierDist:       dist,
			Seed:           seed,
		}
		hist, err := env.RunFL(fmt.Sprintf("tiers-%s-c%d", dist.String(), numClients),
			cfg, global, fed.Clients, fed.Test)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TierRow{
			Spec: dist.String(),
			Mix:  renderMix(assign),
			Hist: hist,
		})
	}
	return res, nil
}

// renderMix counts an assignment into "tier×n" form, tiers ascending.
func renderMix(assign []string) string {
	counts := map[string]int{}
	for _, tier := range assign {
		counts[tier]++
	}
	parts := []string{}
	for _, tier := range device.TierNames() {
		if n := counts[tier]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s×%d", tier, n))
		}
	}
	return strings.Join(parts, " ")
}

// Render prints the sweep as a table: per distribution the realized mix,
// best and final accuracy, total simulated client-seconds, uplink traffic,
// and the uplink saved relative to the full-capability baseline row (the
// first row whose every client is in the full tier; "n/a" without one).
func (r *TierCompareResult) Render() string {
	var baseline int64
	for _, row := range r.Rows {
		if row.Spec == "full:1" {
			baseline = row.Hist.TotalUplinkBytes
			break
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tier sweep: %d clients, FedFT-EDS locals, per-layer aggregation\n", r.NumClients)
	fmt.Fprintf(&b, "%-20s %-22s %9s %9s %11s %11s %9s\n",
		"distribution", "mix", "best acc", "final acc", "client-s", "uplink KB", "saved")
	for _, row := range r.Rows {
		saved := "n/a"
		if baseline > 0 {
			saved = fmt.Sprintf("%.1f%%", 100*(1-float64(row.Hist.TotalUplinkBytes)/float64(baseline)))
		}
		fmt.Fprintf(&b, "%-20s %-22s %8.2f%% %8.2f%% %11.4g %11.1f %9s\n",
			row.Spec, row.Mix,
			100*row.Hist.BestAccuracy, 100*row.Hist.FinalAccuracy,
			row.Hist.TotalTrainSeconds,
			float64(row.Hist.TotalUplinkBytes)/1024,
			saved)
	}
	return b.String()
}
