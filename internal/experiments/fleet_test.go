package experiments

import (
	"strings"
	"testing"
)

// TestRunFleetDaySmoke runs the simulated day over a small virtual fleet:
// 24 hourly aggregations, trace-driven availability, cluster scheduling, and
// pool residency bounded by the pool size rather than the population.
func TestRunFleetDaySmoke(t *testing.T) {
	env, err := NewEnv(ScaleSmoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleetDay(env, FleetOptions{Clients: 64, Cohort: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hist.Records) != fleetDayRounds {
		t.Fatalf("%d records, want %d", len(res.Hist.Records), fleetDayRounds)
	}
	if res.Stats.PeakResident > 3*4 {
		t.Fatalf("peak residency %d over a 64-client fleet: pool not bounded", res.Stats.PeakResident)
	}
	if !strings.Contains(res.Policy, "trace[") || !strings.Contains(res.Policy, "cluster:uniform") {
		t.Fatalf("policy %q: want trace-wrapped cluster sampling", res.Policy)
	}
	out := res.Render()
	for _, want := range []string{"Virtual-fleet day", "fleet fingerprint", "pool:", "best "} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestRunFleetDayResumes pins the artifact-store discipline on the
// source-backed path: a re-launched day with Resume reloads the stored run
// and reproduces its history exactly.
func TestRunFleetDayResumes(t *testing.T) {
	opts := FleetOptions{Clients: 48, Cohort: 4}
	dir := t.TempDir()

	env, err := NewEnv(ScaleSmoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.SetCheckpointPolicy(CheckpointPolicy{Dir: dir, Every: 1}); err != nil {
		t.Fatal(err)
	}
	first, err := RunFleetDay(env, opts)
	if err != nil {
		t.Fatal(err)
	}

	env2, err := NewEnv(ScaleSmoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := env2.SetCheckpointPolicy(CheckpointPolicy{Dir: dir, Every: 1, Resume: true}); err != nil {
		t.Fatal(err)
	}
	second, err := RunFleetDay(env2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Hist.Records) != len(first.Hist.Records) ||
		second.Hist.FinalAccuracy != first.Hist.FinalAccuracy ||
		second.Hist.TotalTrainSeconds != first.Hist.TotalTrainSeconds {
		t.Fatalf("resumed day diverged:\nfirst:  %+v\nsecond: %+v", first.Hist, second.Hist)
	}
	// The resumed run reloaded the finished day: nothing trained, so at most
	// the descriptors were rebuilt and no cohort was ever materialized.
	if second.Stats.Materializations != 0 {
		t.Fatalf("resumed finished day materialized %d clients", second.Stats.Materializations)
	}
}

// TestRunFleetDayAsync exercises the buffered-async day end to end.
func TestRunFleetDayAsync(t *testing.T) {
	env, err := NewEnv(ScaleSmoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleetDay(env, FleetOptions{Clients: 64, Cohort: 6, Buffer: 3, MaxStaleness: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Async || len(res.Hist.Records) != fleetDayRounds {
		t.Fatalf("async day: async=%v records=%d", res.Async, len(res.Hist.Records))
	}
	for _, rec := range res.Hist.Records {
		if rec.Participants != 3 {
			t.Fatalf("aggregation %d folded %d updates, want buffer 3", rec.Round, rec.Participants)
		}
	}
}

// TestRunFleetDayEagerMatchesLazy pins the CLI-facing contrast pair: the
// eager baseline and the fleet-backed day produce identical histories.
func TestRunFleetDayEagerMatchesLazy(t *testing.T) {
	env, err := NewEnv(ScaleSmoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := RunFleetDay(env, FleetOptions{Clients: 48, Cohort: 4})
	if err != nil {
		t.Fatal(err)
	}
	eager, err := RunFleetDay(env, FleetOptions{Clients: 48, Cohort: 4, Eager: true})
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Hist.FinalAccuracy != eager.Hist.FinalAccuracy ||
		lazy.Hist.TotalTrainSeconds != eager.Hist.TotalTrainSeconds ||
		lazy.Hist.TotalUplinkBytes != eager.Hist.TotalUplinkBytes {
		t.Fatalf("eager baseline diverged from fleet-backed day:\nlazy:  %+v\neager: %+v",
			lazy.Hist, eager.Hist)
	}
}

// TestRunFleetCompareSmoke runs the policy sweep over one virtual fleet.
func TestRunFleetCompareSmoke(t *testing.T) {
	env, err := NewEnv(ScaleSmoke, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleetCompare(env, FleetOptions{Clients: 48, Cohort: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Hist.Records) != env.Dims.Rounds {
			t.Fatalf("%s: %d records, want %d", row.Policy, len(row.Hist.Records), env.Dims.Rounds)
		}
		if row.Stats.Materializations == 0 {
			t.Fatalf("%s: no lazy materializations recorded", row.Policy)
		}
	}
	if !strings.Contains(res.Render(), "Virtual-fleet policy comparison") {
		t.Fatalf("render: %s", res.Render())
	}
}
