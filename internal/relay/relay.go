// Package relay implements the mid-tier aggregator of a hierarchical
// federation: a relay accepts a region's leaf clients with the same
// session/engine machinery fedserver uses, folds their updates into a
// single weighted delta per round, and forwards that delta upstream as one
// RegionUpdate frame. The root then composes region deltas through its
// strategy exactly as it would compose client updates, so a relay tree is
// invisible to the strategy, tier and checkpoint layers: for the default
// selected-size weighting,
//
//	sum_r W_r * regionAvg_r / sum_r W_r  ==  sum_i w_i * x_i / sum_i w_i,
//
// the flat federation's weighted average, because each relay reports its
// region's weight mass W_r = sum of its leaves' w_i alongside the average.
package relay

import (
	"fmt"
	"log"
	"math"

	"fedfteds/internal/comm"
	"fedfteds/internal/tensor"
)

// codecName renders a possibly-nil codec for logs.
func codecName(c comm.Codec) string {
	if c == nil {
		return comm.CodecIdentity
	}
	return c.Name()
}

// Config shapes one relay process.
type Config struct {
	// RelayID is the relay's identity in the root's ID space (disjoint from
	// leaf client IDs only by convention; the root never mixes the two).
	RelayID int
	// Leaves is the number of leaf clients the relay waits for before
	// joining the root.
	Leaves int
	// Rounds is the planned number of communication rounds, forwarded to
	// leaves in their Welcome. It must match the root's plan; Run verifies
	// the root's Welcome against it.
	Rounds int
	// Engine tunes the leaf-side fault tolerance (deadline, quorum), the
	// same knobs fedserver exposes for a flat federation.
	Engine comm.EngineConfig
	// LeafCodec is the uplink codec advertised to this region's leaves
	// (comm.ParseCodec spec; empty or "identity" keeps legacy frames). It is
	// independent of the upstream codec, which the relay adopts from the
	// root's Welcome: a relay can decode int8 leaf updates and forward the
	// folded region under topk, or vice versa — each hop re-encodes.
	LeafCodec string
}

// Validate checks the configuration bounds.
func (c Config) Validate() error {
	if c.RelayID < 0 {
		return fmt.Errorf("relay: negative relay id %d", c.RelayID)
	}
	if c.Leaves <= 0 {
		return fmt.Errorf("relay: %d leaves, need at least 1", c.Leaves)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("relay: %d rounds, need at least 1", c.Rounds)
	}
	if c.LeafCodec != "" {
		if _, err := comm.ParseCodec(c.LeafCodec); err != nil {
			return fmt.Errorf("relay: leaf codec: %w", err)
		}
	}
	return c.Engine.Validate()
}

// Run drives one relay to completion: accept Leaves leaf registrations,
// join the root as a relay (declaring the region's summed dataset size and
// population), then for every round the root starts, rebroadcast it to the
// region, fold the leaf updates, and send the folded RegionUpdate upstream.
// Returns nil on a clean root-initiated shutdown. On any error the leaf
// federation is shut down before returning, so leaves never hang on a dead
// region.
func Run(root comm.Conn, leafListener comm.Listener, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	sess, err := comm.AcceptClientsCodec(leafListener, cfg.Leaves, cfg.Rounds, cfg.LeafCodec)
	if err != nil {
		return err
	}
	var leafCodec comm.Codec
	if cfg.LeafCodec != "" && cfg.LeafCodec != comm.CodecIdentity {
		// Validate ran in cfg.Validate; decoding is stateless, so one
		// instance serves every leaf and every round.
		leafCodec, _ = comm.ParseCodec(cfg.LeafCodec)
	}
	shutdown := func(reason string) {
		if err := sess.Shutdown(reason); err != nil {
			log.Printf("relay %d: leaf shutdown: %v", cfg.RelayID, err)
		}
	}
	size := 0
	for _, id := range sess.ClientIDs() {
		size += sess.LocalSize(id)
	}
	cs, welcome, err := comm.JoinRelay(root, cfg.RelayID, size, cfg.Leaves)
	if err != nil {
		shutdown("relay failed to join root")
		return err
	}
	// The upstream codec is whatever the root advertises (identity when it
	// advertises nothing): the relay re-encodes the folded region under it,
	// so the leaf and upstream hops compress independently. The instance
	// lives for the whole session — topk carries the region's error-feedback
	// residual across rounds, exactly like a client's.
	upPick, err := comm.PickCodec(welcome.Codecs, "auto")
	if err != nil {
		shutdown("relay/root codec mismatch")
		return fmt.Errorf("relay %d: %w", cfg.RelayID, err)
	}
	var upCodec comm.Codec
	if upPick.Name() != comm.CodecIdentity {
		upCodec = upPick
	}
	if welcome.Rounds != cfg.Rounds {
		shutdown("relay/root round plan mismatch")
		return fmt.Errorf("relay %d: root plans %d rounds, -rounds says %d — leaves were already promised %d",
			cfg.RelayID, welcome.Rounds, cfg.Rounds, cfg.Rounds)
	}
	engine, err := comm.NewRoundEngine(sess, cfg.Engine)
	if err != nil {
		shutdown("relay engine misconfigured")
		return err
	}
	log.Printf("relay %d: region ready, %d leaves (size %d), root planned %d rounds, codecs leaf=%s up=%s",
		cfg.RelayID, cfg.Leaves, size, welcome.Rounds, codecName(leafCodec), codecName(upCodec))
	for {
		rs, ok, err := cs.NextRound()
		if err != nil {
			shutdown("root connection lost")
			return fmt.Errorf("relay %d: %w", cfg.RelayID, err)
		}
		if !ok {
			shutdown("root shut the federation down")
			return nil
		}
		ru, out, err := foldRound(engine, cfg.RelayID, rs, leafCodec, upCodec)
		if err != nil {
			shutdown("region round failed")
			return fmt.Errorf("relay %d: round %d: %w", cfg.RelayID, rs.Round, err)
		}
		log.Printf("relay %d: round %d: %d leaves folded (%d timed out, %d dropped)",
			cfg.RelayID, rs.Round, len(out.Reported), len(out.TimedOut), len(out.Dropped))
		if err := cs.SendRegion(ru); err != nil {
			shutdown("root connection lost")
			return fmt.Errorf("relay %d: forwarding round %d: %w", cfg.RelayID, rs.Round, err)
		}
	}
}

// FoldRound runs one downstream round — rebroadcast rs to every live leaf,
// stream their updates into a weighted average — and packages the result as
// the upstream RegionUpdate. Leaves are weighed by their selected sample
// count (paper Eq. 5); strategy-level weighting applies upstream, at region
// granularity. When rs carries a Layout the region aggregates per layer
// (tiered leaves ship masked updates), with layers no leaf covered falling
// back to the broadcast state, so the forwarded delta always covers the
// full broadcast layout.
func FoldRound(engine *comm.RoundEngine, relayID int, rs comm.RoundStart) (comm.RegionUpdate, comm.RoundOutcome, error) {
	return foldRound(engine, relayID, rs, nil, nil)
}

// foldRound is FoldRound with the relay's codecs: leafCodec decodes the
// region's leaf payloads, upCodec re-encodes the folded state for the root
// (nil keeps the respective hop on legacy lossless frames). Both decode and
// re-encode reference the round's broadcast state, which each hop's peer
// holds by construction.
func foldRound(engine *comm.RoundEngine, relayID int, rs comm.RoundStart, leafCodec, upCodec comm.Codec) (comm.RegionUpdate, comm.RoundOutcome, error) {
	var (
		plain  *comm.StreamAggregator
		masked *comm.MaskedStreamAggregator
		fold   func(comm.ClientUpdate) error
		err    error
	)
	// The broadcast state doubles as the codec reference on both hops (and
	// as the masked aggregator's fallback); decode it once when any of the
	// three needs it.
	var bcast []*tensor.Tensor
	if leafCodec != nil || upCodec != nil || len(rs.Layout) > 0 {
		if bcast, err = comm.DecodeTensors(rs.State); err != nil {
			return comm.RegionUpdate{}, comm.RoundOutcome{}, fmt.Errorf("relay %d: decoding broadcast: %w", relayID, err)
		}
	}
	if len(rs.Layout) > 0 {
		masked, err = comm.NewMaskedStreamAggregator(nil, rs.Groups, rs.Layout)
		if err != nil {
			return comm.RegionUpdate{}, comm.RoundOutcome{}, err
		}
		if leafCodec != nil {
			if err := masked.SetCodec(leafCodec, bcast); err != nil {
				return comm.RegionUpdate{}, comm.RoundOutcome{}, err
			}
		}
		fold = masked.Add
	} else {
		plain = comm.NewStreamAggregator()
		if leafCodec != nil {
			plain.SetCodec(leafCodec, bcast)
		}
		fold = plain.Add
	}

	var (
		numSelected  int
		trainSeconds float64
		lossSum      float64
		entropySum   float64
		entropyW     float64
		weightSum    float64
	)
	out, err := engine.RunRound(rs, func(u comm.ClientUpdate) error {
		if masked != nil && len(u.Groups) == 0 {
			// Whole-state contract: an empty declaration means the leaf
			// trained every broadcast group; the masked aggregator itself
			// insists on an explicit subset.
			u.Groups = rs.Groups
		}
		if err := fold(u); err != nil {
			return err
		}
		w := float64(u.NumSelected)
		numSelected += u.NumSelected
		trainSeconds += u.TrainSeconds
		lossSum += w * u.TrainLoss
		weightSum += w
		if !math.IsNaN(u.MeanEntropy) {
			entropySum += w * u.MeanEntropy
			entropyW += w
		}
		return nil
	})
	if err != nil {
		return comm.RegionUpdate{}, out, err
	}

	var (
		total float64
		fused []*tensor.Tensor
	)
	if masked != nil {
		total = masked.Total()
		if fused, err = masked.Finish(bcast); err != nil {
			return comm.RegionUpdate{}, out, err
		}
	} else {
		total = plain.Total()
		if fused, err = plain.Finish(); err != nil {
			return comm.RegionUpdate{}, out, err
		}
	}
	var blob []byte
	codecEcho := ""
	if upCodec == nil {
		blob, err = comm.EncodeTensors(fused)
	} else {
		// The upstream seed derives from (round, relay ID) alone — the relay
		// has no federation seed flag, and the root never re-derives these
		// bits, so determinism across relay restarts is all that matters.
		codecEcho = upCodec.Name()
		blob, err = upCodec.Encode(bcast, fused, comm.CodecSeed(0, rs.Round, relayID))
	}
	if err != nil {
		return comm.RegionUpdate{}, out, err
	}

	loss := 0.0
	if weightSum > 0 {
		loss = lossSum / weightSum
	}
	entropy := math.NaN()
	if entropyW > 0 {
		entropy = entropySum / entropyW
	}
	return comm.RegionUpdate{
		RelayID:      relayID,
		Round:        rs.Round,
		Version:      rs.Version,
		State:        blob,
		Codec:        codecEcho,
		Weight:       total,
		Clients:      len(out.Reported),
		NumSelected:  numSelected,
		TrainSeconds: trainSeconds,
		TrainLoss:    loss,
		MeanEntropy:  entropy,
	}, out, nil
}
