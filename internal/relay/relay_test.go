package relay

import (
	"math"
	"testing"

	"fedfteds/internal/comm"
	"fedfteds/internal/tensor"
)

// dyadicTensors builds deterministic tensors whose values are multiples of
// 1/16 in [-4, 4). With power-of-two aggregation weights every multiply,
// add and divide in the float32 aggregation pipeline is exact, so the
// tree-vs-flat comparison below can demand bit identity instead of a
// tolerance: the two topologies associate the additions differently, which
// only matters once rounding enters.
func dyadicTensors(seed int64, shapes [][]int) []*tensor.Tensor {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float32 {
		state = state*2862933555777941757 + 3037000493
		return float32(int64(state>>40)%128-64) / 16
	}
	out := make([]*tensor.Tensor, len(shapes))
	for i, s := range shapes {
		out[i] = tensor.New(s...)
		d := out[i].Data()
		for j := range d {
			d[j] = next()
		}
	}
	return out
}

var (
	testGroups = []string{"low", "up"}
	testLayout = []string{"low", "low", "up"}
	testShapes = [][]int{{2, 3}, {4}, {2}}
)

// leafUpdate is the crafted ClientUpdate leaf id would send: a full-layout
// dyadic state declaring every broadcast group, weight 16.
func leafUpdate(id, round, version int) comm.ClientUpdate {
	blob, err := comm.EncodeTensors(dyadicTensors(int64(id+1), testShapes))
	if err != nil {
		panic(err)
	}
	entropy := math.NaN()
	if id%2 == 0 {
		entropy = 1 + float64(id)
	}
	return comm.ClientUpdate{
		ClientID: id, Round: round, Version: version, State: blob,
		Groups: testGroups, NumSelected: 16, TrainSeconds: 0.25 * float64(id+1),
		TrainLoss: 0.5 * float64(id+1), MeanEntropy: entropy,
	}
}

// runLeaf joins a region and answers every round with its crafted update.
func runLeaf(conn comm.Conn, id int) {
	sess, _, err := comm.Join(conn, id, 10+id)
	if err != nil {
		return
	}
	for {
		rs, ok, err := sess.NextRound()
		if err != nil || !ok {
			_ = sess.Close()
			return
		}
		_ = sess.SendUpdate(leafUpdate(id, rs.Round, rs.Version))
	}
}

// TestRelayTreeMatchesFlatFederationExactly is the hierarchy's equivalence
// gate: a 2-relay tree over in-process transports — each relay folding its
// region with the production masked-layout path — must reproduce the flat
// federation's weighted average bit for bit for equal-weight regions. The
// leaf states are dyadic rationals (see dyadicTensors), so any deviation is
// an arithmetic bug, not float noise.
func TestRelayTreeMatchesFlatFederationExactly(t *testing.T) {
	const (
		relays        = 2
		leavesPer     = 2
		rounds        = 1
		globalVersion = 0
	)
	globalBlob, err := comm.EncodeTensors(dyadicTensors(99, testShapes))
	if err != nil {
		t.Fatal(err)
	}
	rs := comm.RoundStart{
		Round: 1, State: globalBlob, Groups: testGroups,
		SelectFraction: 1, LocalEpochs: 1, Version: globalVersion, Layout: testLayout,
	}

	// The flat reference: all four leaves folded by one masked aggregator,
	// exactly what a relay-less fedserver would compute.
	fallback, err := comm.DecodeTensors(globalBlob)
	if err != nil {
		t.Fatal(err)
	}
	flatAgg, err := comm.NewMaskedStreamAggregator(nil, testGroups, testLayout)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < relays*leavesPer; id++ {
		if err := flatAgg.Add(leafUpdate(id, 1, globalVersion)); err != nil {
			t.Fatal(err)
		}
	}
	flat, err := flatAgg.Finish(fallback)
	if err != nil {
		t.Fatal(err)
	}

	// The tree: two relay.Run processes over pipe transports, a manual root.
	rootLst := comm.NewPipeListener(relays)
	relayErr := make(chan error, relays)
	for r := 0; r < relays; r++ {
		leafLst := comm.NewPipeListener(leavesPer)
		for i := 0; i < leavesPer; i++ {
			go runLeaf(leafLst.ClientSide(i), r*leavesPer+i)
		}
		go func(r int, leafLst *comm.PipeListener) {
			relayErr <- Run(rootLst.ClientSide(r), leafLst, Config{
				RelayID: r, Leaves: leavesPer, Rounds: rounds,
				Engine: comm.EngineConfig{Quorum: 1},
			})
		}(r, leafLst)
	}
	sess, err := comm.AcceptClients(rootLst, relays, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < relays; r++ {
		if !sess.IsRelay(r) || sess.DownstreamClients(r) != leavesPer {
			t.Fatalf("relay %d registered as relay=%v leaves=%d", r, sess.IsRelay(r), sess.DownstreamClients(r))
		}
	}
	engine, err := comm.NewRoundEngine(sess, comm.EngineConfig{Quorum: 1})
	if err != nil {
		t.Fatal(err)
	}
	rootAgg := comm.NewStreamAggregator()
	regions := make(map[int]comm.RegionUpdate, relays)
	out, err := engine.RunRegionRound(rs, []int{0, 1}, func(ru comm.RegionUpdate) error {
		regions[ru.RelayID] = ru
		return rootAgg.Add(comm.ClientUpdate{
			ClientID: ru.RelayID, Round: ru.Round, State: ru.State, NumSelected: ru.NumSelected,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reported) != relays {
		t.Fatalf("root round reported %v", out.Reported)
	}
	tree, err := rootAgg.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Shutdown("done"); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < relays; r++ {
		if err := <-relayErr; err != nil {
			t.Fatalf("relay exited with %v", err)
		}
	}

	if len(tree) != len(flat) {
		t.Fatalf("tree fused %d tensors, flat %d", len(tree), len(flat))
	}
	for i := range flat {
		if !tree[i].Equal(flat[i]) {
			t.Fatalf("tensor %d: tree aggregate diverges from flat federation\ntree: %v\nflat: %v",
				i, tree[i].Data(), flat[i].Data())
		}
	}

	// Region metadata: relay 0 folded leaves 0 (entropy 1, loss 0.5) and 1
	// (entropy NaN, loss 1.0), 16 selected samples each.
	ru := regions[0]
	if ru.Weight != 32 || ru.NumSelected != 32 || ru.Clients != 2 {
		t.Fatalf("region 0 mass: %+v", ru)
	}
	if ru.TrainSeconds != 0.25+0.5 {
		t.Fatalf("region 0 train seconds %v", ru.TrainSeconds)
	}
	if want := (16*0.5 + 16*1.0) / 32; ru.TrainLoss != want {
		t.Fatalf("region 0 loss %v, want %v", ru.TrainLoss, want)
	}
	// Only leaf 0 reported an entropy; the weighted mean over reporters is 1.
	if ru.MeanEntropy != 1 {
		t.Fatalf("region 0 entropy %v, want 1", ru.MeanEntropy)
	}
	if ru.Version != globalVersion || ru.Round != 1 {
		t.Fatalf("region 0 stamps: %+v", ru)
	}
}

// TestConfigValidate pins the fail-fast surface.
func TestConfigValidate(t *testing.T) {
	good := Config{RelayID: 0, Leaves: 2, Rounds: 3, Engine: comm.EngineConfig{Quorum: 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"negative id": {RelayID: -1, Leaves: 2, Rounds: 3, Engine: comm.EngineConfig{Quorum: 1}},
		"no leaves":   {RelayID: 0, Leaves: 0, Rounds: 3, Engine: comm.EngineConfig{Quorum: 1}},
		"no rounds":   {RelayID: 0, Leaves: 2, Rounds: 0, Engine: comm.EngineConfig{Quorum: 1}},
		"bad quorum":  {RelayID: 0, Leaves: 2, Rounds: 3, Engine: comm.EngineConfig{Quorum: 1.5}},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
