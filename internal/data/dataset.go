// Package data provides the dataset substrate: in-memory labeled datasets,
// batching, splits, and the synthetic domain family that stands in for the
// paper's CIFAR-10 / CIFAR-100 / Small-ImageNet / Google-Speech-Commands
// corpora (see DESIGN.md for the substitution argument).
package data

import (
	"errors"
	"fmt"
	"math/rand"

	"fedfteds/internal/tensor"
)

// ErrData reports an invalid dataset operation.
var ErrData = errors.New("data: invalid dataset")

// Dataset is an in-memory labeled dataset. X is batch-first; Y holds class
// labels in [0, NumClasses).
type Dataset struct {
	// X holds the features, shape (N, ...).
	X *tensor.Tensor
	// Y holds the integer class labels, length N.
	Y []int
	// NumClasses is the label-space size.
	NumClasses int
}

// NewDataset validates and wraps features and labels.
func NewDataset(x *tensor.Tensor, y []int, numClasses int) (*Dataset, error) {
	if x.Rank() < 2 {
		return nil, fmt.Errorf("%w: features rank %d, want >= 2", ErrData, x.Rank())
	}
	if x.Dim(0) != len(y) {
		return nil, fmt.Errorf("%w: %d samples vs %d labels", ErrData, x.Dim(0), len(y))
	}
	if numClasses <= 1 {
		return nil, fmt.Errorf("%w: %d classes", ErrData, numClasses)
	}
	for i, c := range y {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("%w: label %d at index %d outside [0,%d)", ErrData, c, i, numClasses)
		}
	}
	return &Dataset{X: x, Y: y, NumClasses: numClasses}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// SampleShape returns the per-sample feature shape.
func (d *Dataset) SampleShape() []int { return d.X.Shape()[1:] }

// Subset returns a new dataset holding copies of the samples at indices.
func (d *Dataset) Subset(indices []int) (*Dataset, error) {
	shape := d.X.Shape()
	stride := 1
	for _, dim := range shape[1:] {
		stride *= dim
	}
	outShape := append([]int{len(indices)}, shape[1:]...)
	x := tensor.New(outShape...)
	y := make([]int, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			return nil, fmt.Errorf("%w: index %d outside [0,%d)", ErrData, idx, d.Len())
		}
		copy(x.Data()[i*stride:(i+1)*stride], d.X.Data()[idx*stride:(idx+1)*stride])
		y[i] = d.Y[idx]
	}
	return &Dataset{X: x, Y: y, NumClasses: d.NumClasses}, nil
}

// Split partitions the dataset into a leading portion of n samples and the
// remainder, without copying labels order (no shuffle; shuffle first if
// needed).
func (d *Dataset) Split(n int) (*Dataset, *Dataset, error) {
	if n < 0 || n > d.Len() {
		return nil, nil, fmt.Errorf("%w: split %d of %d", ErrData, n, d.Len())
	}
	head := &Dataset{X: d.X.Slice(0, n), Y: d.Y[:n], NumClasses: d.NumClasses}
	tail := &Dataset{X: d.X.Slice(n, d.Len()), Y: d.Y[n:], NumClasses: d.NumClasses}
	return head, tail, nil
}

// Shuffled returns a copy of the dataset with samples permuted by rng.
func (d *Dataset) Shuffled(rng *rand.Rand) (*Dataset, error) {
	perm := rng.Perm(d.Len())
	return d.Subset(perm)
}

// ClassHistogram returns per-class sample counts.
func (d *Dataset) ClassHistogram() []int {
	h := make([]int, d.NumClasses)
	for _, c := range d.Y {
		h[c]++
	}
	return h
}

// Batch is one minibatch of features and labels.
type Batch struct {
	// X holds the batch features (B, ...).
	X *tensor.Tensor
	// Y holds the batch labels, length B.
	Y []int
}

// Batches splits the dataset into minibatches of at most size samples, in
// order. If rng is non-nil the sample order is shuffled first and each batch
// holds copies; with a nil rng the batches are contiguous views sharing
// storage with the dataset (callers must not mutate them), which makes the
// scoring and evaluation passes copy-free.
func (d *Dataset) Batches(size int, rng *rand.Rand) ([]Batch, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: batch size %d", ErrData, size)
	}
	n := d.Len()
	batches := make([]Batch, 0, (n+size-1)/size)
	if rng == nil {
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			batches = append(batches, Batch{X: d.X.Slice(lo, hi), Y: d.Y[lo:hi]})
		}
		return batches, nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for lo := 0; lo < len(order); lo += size {
		hi := lo + size
		if hi > len(order) {
			hi = len(order)
		}
		sub, err := d.Subset(order[lo:hi])
		if err != nil {
			return nil, err
		}
		batches = append(batches, Batch{X: sub.X, Y: sub.Y})
	}
	return batches, nil
}

// BatchIter streams shuffled minibatches of a dataset (optionally restricted
// to a subset of indices) while reusing two buffers — one features tensor and
// one label slice — instead of materializing every epoch's batches as fresh
// copies. The batch composition and order are exactly those of
// Subset(indices) followed by Batches(size, rng).
//
// The Batch returned by Next aliases the iterator's buffers: it is valid
// until the next Next or Reset call. An iterator is not safe for concurrent
// use, and Reset must be called before the first Next.
type BatchIter struct {
	ds      *Dataset
	indices []int // nil means the whole dataset
	size    int
	order   []int
	pos     int
	stride  int
	x       *tensor.Tensor
	y       []int
	shape   []int
}

// NewBatchIter constructs an iterator over ds restricted to indices (nil for
// the whole dataset) with the given batch size. The indices slice is
// borrowed, not copied.
func NewBatchIter(ds *Dataset, indices []int, size int) (*BatchIter, error) {
	it := &BatchIter{}
	if err := it.Bind(ds, indices, size); err != nil {
		return nil, err
	}
	return it, nil
}

// Bind repoints the iterator at a new dataset/subset, reusing its buffers.
// This is how a pooled client replica hops between clients without
// reallocating.
func (it *BatchIter) Bind(ds *Dataset, indices []int, size int) error {
	if size <= 0 {
		return fmt.Errorf("%w: batch size %d", ErrData, size)
	}
	n := ds.Len()
	for _, idx := range indices {
		if idx < 0 || idx >= n {
			return fmt.Errorf("%w: index %d outside [0,%d)", ErrData, idx, n)
		}
	}
	it.ds = ds
	it.indices = indices
	it.size = size
	it.stride = 1
	sample := ds.SampleShape()
	for _, dim := range sample {
		it.stride *= dim
	}
	it.shape = append(it.shape[:0], 0)
	it.shape = append(it.shape, sample...)
	m := n
	if indices != nil {
		m = len(indices)
	}
	if cap(it.order) < m {
		it.order = make([]int, m)
	}
	it.order = it.order[:m]
	it.pos = m // exhausted until Reset
	return nil
}

// Len returns the number of samples the iterator covers per epoch.
func (it *BatchIter) Len() int { return len(it.order) }

// Reset rewinds the iterator for a new epoch. If rng is non-nil the sample
// order is reshuffled exactly as Batches would (one rng.Shuffle call);
// otherwise the order is sequential.
func (it *BatchIter) Reset(rng *rand.Rand) {
	for i := range it.order {
		it.order[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(it.order), func(i, j int) { it.order[i], it.order[j] = it.order[j], it.order[i] })
	}
	it.pos = 0
}

// Next gathers the next minibatch into the iterator's reused buffers. The
// returned Batch is valid until the next Next or Reset call; ok is false when
// the epoch is exhausted.
func (it *BatchIter) Next() (b Batch, ok bool) {
	if it.pos >= len(it.order) {
		return Batch{}, false
	}
	hi := it.pos + it.size
	if hi > len(it.order) {
		hi = len(it.order)
	}
	bn := hi - it.pos
	it.shape[0] = bn
	it.x = tensor.Ensure(it.x, it.shape...)
	if cap(it.y) < bn {
		it.y = make([]int, it.size)
	}
	it.y = it.y[:bn]
	xd, src := it.x.Data(), it.ds.X.Data()
	for r := 0; r < bn; r++ {
		idx := it.order[it.pos+r]
		if it.indices != nil {
			idx = it.indices[idx]
		}
		copy(xd[r*it.stride:(r+1)*it.stride], src[idx*it.stride:(idx+1)*it.stride])
		it.y[r] = it.ds.Y[idx]
	}
	it.pos = hi
	return Batch{X: it.x, Y: it.y}, true
}

// Concat concatenates datasets with identical sample shapes and class counts.
func Concat(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: concat of nothing", ErrData)
	}
	total := 0
	shape := parts[0].SampleShape()
	nc := parts[0].NumClasses
	for _, p := range parts {
		if p.NumClasses != nc {
			return nil, fmt.Errorf("%w: class count mismatch %d vs %d", ErrData, p.NumClasses, nc)
		}
		ps := p.SampleShape()
		if len(ps) != len(shape) {
			return nil, fmt.Errorf("%w: sample shape mismatch %v vs %v", ErrData, ps, shape)
		}
		for i := range ps {
			if ps[i] != shape[i] {
				return nil, fmt.Errorf("%w: sample shape mismatch %v vs %v", ErrData, ps, shape)
			}
		}
		total += p.Len()
	}
	outShape := append([]int{total}, shape...)
	x := tensor.New(outShape...)
	y := make([]int, 0, total)
	off := 0
	for _, p := range parts {
		copy(x.Data()[off:], p.X.Data())
		off += p.X.Len()
		y = append(y, p.Y...)
	}
	return &Dataset{X: x, Y: y, NumClasses: nc}, nil
}
