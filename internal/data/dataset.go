// Package data provides the dataset substrate: in-memory labeled datasets,
// batching, splits, and the synthetic domain family that stands in for the
// paper's CIFAR-10 / CIFAR-100 / Small-ImageNet / Google-Speech-Commands
// corpora (see DESIGN.md for the substitution argument).
package data

import (
	"errors"
	"fmt"
	"math/rand"

	"fedfteds/internal/tensor"
)

// ErrData reports an invalid dataset operation.
var ErrData = errors.New("data: invalid dataset")

// Dataset is an in-memory labeled dataset. X is batch-first; Y holds class
// labels in [0, NumClasses).
type Dataset struct {
	// X holds the features, shape (N, ...).
	X *tensor.Tensor
	// Y holds the integer class labels, length N.
	Y []int
	// NumClasses is the label-space size.
	NumClasses int
}

// NewDataset validates and wraps features and labels.
func NewDataset(x *tensor.Tensor, y []int, numClasses int) (*Dataset, error) {
	if x.Rank() < 2 {
		return nil, fmt.Errorf("%w: features rank %d, want >= 2", ErrData, x.Rank())
	}
	if x.Dim(0) != len(y) {
		return nil, fmt.Errorf("%w: %d samples vs %d labels", ErrData, x.Dim(0), len(y))
	}
	if numClasses <= 1 {
		return nil, fmt.Errorf("%w: %d classes", ErrData, numClasses)
	}
	for i, c := range y {
		if c < 0 || c >= numClasses {
			return nil, fmt.Errorf("%w: label %d at index %d outside [0,%d)", ErrData, c, i, numClasses)
		}
	}
	return &Dataset{X: x, Y: y, NumClasses: numClasses}, nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Y) }

// SampleShape returns the per-sample feature shape.
func (d *Dataset) SampleShape() []int { return d.X.Shape()[1:] }

// Subset returns a new dataset holding copies of the samples at indices.
func (d *Dataset) Subset(indices []int) (*Dataset, error) {
	shape := d.X.Shape()
	stride := 1
	for _, dim := range shape[1:] {
		stride *= dim
	}
	outShape := append([]int{len(indices)}, shape[1:]...)
	x := tensor.New(outShape...)
	y := make([]int, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= d.Len() {
			return nil, fmt.Errorf("%w: index %d outside [0,%d)", ErrData, idx, d.Len())
		}
		copy(x.Data()[i*stride:(i+1)*stride], d.X.Data()[idx*stride:(idx+1)*stride])
		y[i] = d.Y[idx]
	}
	return &Dataset{X: x, Y: y, NumClasses: d.NumClasses}, nil
}

// Split partitions the dataset into a leading portion of n samples and the
// remainder, without copying labels order (no shuffle; shuffle first if
// needed).
func (d *Dataset) Split(n int) (*Dataset, *Dataset, error) {
	if n < 0 || n > d.Len() {
		return nil, nil, fmt.Errorf("%w: split %d of %d", ErrData, n, d.Len())
	}
	head := &Dataset{X: d.X.Slice(0, n), Y: d.Y[:n], NumClasses: d.NumClasses}
	tail := &Dataset{X: d.X.Slice(n, d.Len()), Y: d.Y[n:], NumClasses: d.NumClasses}
	return head, tail, nil
}

// Shuffled returns a copy of the dataset with samples permuted by rng.
func (d *Dataset) Shuffled(rng *rand.Rand) (*Dataset, error) {
	perm := rng.Perm(d.Len())
	return d.Subset(perm)
}

// ClassHistogram returns per-class sample counts.
func (d *Dataset) ClassHistogram() []int {
	h := make([]int, d.NumClasses)
	for _, c := range d.Y {
		h[c]++
	}
	return h
}

// Batch is one minibatch of features and labels.
type Batch struct {
	// X holds the batch features (B, ...).
	X *tensor.Tensor
	// Y holds the batch labels, length B.
	Y []int
}

// Batches splits the dataset into minibatches of at most size samples, in
// order. If rng is non-nil the sample order is shuffled first.
func (d *Dataset) Batches(size int, rng *rand.Rand) ([]Batch, error) {
	if size <= 0 {
		return nil, fmt.Errorf("%w: batch size %d", ErrData, size)
	}
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	if rng != nil {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	var batches []Batch
	for lo := 0; lo < len(order); lo += size {
		hi := lo + size
		if hi > len(order) {
			hi = len(order)
		}
		sub, err := d.Subset(order[lo:hi])
		if err != nil {
			return nil, err
		}
		batches = append(batches, Batch{X: sub.X, Y: sub.Y})
	}
	return batches, nil
}

// Concat concatenates datasets with identical sample shapes and class counts.
func Concat(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: concat of nothing", ErrData)
	}
	total := 0
	shape := parts[0].SampleShape()
	nc := parts[0].NumClasses
	for _, p := range parts {
		if p.NumClasses != nc {
			return nil, fmt.Errorf("%w: class count mismatch %d vs %d", ErrData, p.NumClasses, nc)
		}
		ps := p.SampleShape()
		if len(ps) != len(shape) {
			return nil, fmt.Errorf("%w: sample shape mismatch %v vs %v", ErrData, ps, shape)
		}
		for i := range ps {
			if ps[i] != shape[i] {
				return nil, fmt.Errorf("%w: sample shape mismatch %v vs %v", ErrData, ps, shape)
			}
		}
		total += p.Len()
	}
	outShape := append([]int{total}, shape...)
	x := tensor.New(outShape...)
	y := make([]int, 0, total)
	off := 0
	for _, p := range parts {
		copy(x.Data()[off:], p.X.Data())
		off += p.X.Len()
		y = append(y, p.Y...)
	}
	return &Dataset{X: x, Y: y, NumClasses: nc}, nil
}
