package data

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedfteds/internal/tensor"
)

func testDataset(t *testing.T, n, dim, classes int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(n, dim)
	x.FillNormal(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = i % classes
	}
	ds, err := NewDataset(x, y, classes)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewDatasetValidation(t *testing.T) {
	x := tensor.New(4, 3)
	tests := []struct {
		name    string
		x       *tensor.Tensor
		y       []int
		classes int
	}{
		{name: "label count", x: x, y: []int{0, 1}, classes: 2},
		{name: "one class", x: x, y: []int{0, 0, 0, 0}, classes: 1},
		{name: "label range", x: x, y: []int{0, 1, 2, 5}, classes: 3},
		{name: "rank 1", x: tensor.New(4), y: []int{0, 1, 0, 1}, classes: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewDataset(tt.x, tt.y, tt.classes); !errors.Is(err, ErrData) {
				t.Fatalf("expected ErrData, got %v", err)
			}
		})
	}
}

func TestSubsetCopiesData(t *testing.T) {
	ds := testDataset(t, 10, 4, 3)
	sub, err := ds.Subset([]int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if sub.Y[0] != 1 || sub.Y[1] != 0 || sub.Y[2] != 2 {
		t.Fatalf("subset labels %v", sub.Y)
	}
	// Mutating the subset must not touch the original.
	orig := ds.X.At(1, 0)
	sub.X.Set(999, 0, 0)
	if ds.X.At(1, 0) != orig {
		t.Fatal("Subset shares storage with parent")
	}
	if _, err := ds.Subset([]int{42}); !errors.Is(err, ErrData) {
		t.Fatalf("expected ErrData on out-of-range, got %v", err)
	}
}

func TestSplitAndShuffle(t *testing.T) {
	ds := testDataset(t, 10, 2, 2)
	head, tail, err := ds.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	if head.Len() != 4 || tail.Len() != 6 {
		t.Fatalf("split %d/%d", head.Len(), tail.Len())
	}
	if _, _, err := ds.Split(11); !errors.Is(err, ErrData) {
		t.Fatalf("expected ErrData, got %v", err)
	}
	sh, err := ds.Shuffled(rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if sh.Len() != ds.Len() {
		t.Fatal("shuffle changed length")
	}
	// Same multiset of labels.
	if got, want := sh.ClassHistogram(), ds.ClassHistogram(); got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("shuffle changed histogram %v vs %v", got, want)
	}
}

func TestBatchesCoverAll(t *testing.T) {
	ds := testDataset(t, 23, 3, 4)
	batches, err := ds.Batches(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("%d batches, want 3", len(batches))
	}
	total := 0
	for _, b := range batches {
		total += len(b.Y)
	}
	if total != 23 {
		t.Fatalf("batches cover %d samples", total)
	}
	if _, err := ds.Batches(0, nil); !errors.Is(err, ErrData) {
		t.Fatalf("expected ErrData for batch size 0, got %v", err)
	}
}

func TestConcat(t *testing.T) {
	a := testDataset(t, 4, 3, 2)
	b := testDataset(t, 6, 3, 2)
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 10 {
		t.Fatalf("concat len %d", c.Len())
	}
	bad := testDataset(t, 2, 5, 2)
	if _, err := Concat(a, bad); !errors.Is(err, ErrData) {
		t.Fatalf("expected ErrData on shape mismatch, got %v", err)
	}
}

func TestUniverseValidation(t *testing.T) {
	if _, err := NewUniverse(1, 8, 1); !errors.Is(err, ErrData) {
		t.Fatalf("expected ErrData, got %v", err)
	}
	if _, err := NewUniverse(8, 4, 1); !errors.Is(err, ErrData) {
		t.Fatalf("expected ErrData for obs < latent, got %v", err)
	}
}

func TestDomainGenerateBalanced(t *testing.T) {
	suite, err := NewStandardSuite(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ds, err := suite.Target10.GenerateBalanced(200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 200 || ds.NumClasses != 10 {
		t.Fatalf("len=%d classes=%d", ds.Len(), ds.NumClasses)
	}
	hist := ds.ClassHistogram()
	for c, cnt := range hist {
		if cnt != 20 {
			t.Fatalf("class %d has %d samples, want 20", c, cnt)
		}
	}
	if !ds.X.IsFinite() {
		t.Fatal("generated non-finite features")
	}
}

func TestDomainDeterministicPrototypes(t *testing.T) {
	s1, err := NewStandardSuite(7)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStandardSuite(7)
	if err != nil {
		t.Fatal(err)
	}
	ds1, err := s1.Target10.GenerateBalanced(50, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := s2.Target10.GenerateBalanced(50, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !ds1.X.Equal(ds2.X) {
		t.Fatal("same seeds produced different data")
	}
}

func TestDomainClassesAreSeparable(t *testing.T) {
	// Same-class samples must be closer on average than cross-class samples,
	// otherwise no model can learn the task.
	suite, err := NewStandardSuite(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	ds, err := suite.Target10.GenerateBalanced(400, rng)
	if err != nil {
		t.Fatal(err)
	}
	dim := ds.SampleShape()[0]
	dist := func(i, j int) float64 {
		var s float64
		xi := ds.X.Data()[i*dim : (i+1)*dim]
		xj := ds.X.Data()[j*dim : (j+1)*dim]
		for k := range xi {
			d := float64(xi[k] - xj[k])
			s += d * d
		}
		return math.Sqrt(s)
	}
	var same, cross float64
	var ns, nc int
	for i := 0; i < 200; i++ {
		for j := i + 1; j < 200; j++ {
			if ds.Y[i] == ds.Y[j] {
				same += dist(i, j)
				ns++
			} else {
				cross += dist(i, j)
				nc++
			}
		}
	}
	same /= float64(ns)
	cross /= float64(nc)
	if same >= cross {
		t.Fatalf("same-class distance %.3f >= cross-class %.3f: domain not separable", same, cross)
	}
}

func TestFarDomainDiffersFromClose(t *testing.T) {
	// The far domain's per-dimension distortion must shift its feature
	// statistics visibly away from the close domains'.
	suite, err := NewStandardSuite(7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	near, err := suite.Target10.GenerateBalanced(600, rng)
	if err != nil {
		t.Fatal(err)
	}
	far, err := suite.Far.GenerateBalanced(600, rng)
	if err != nil {
		t.Fatal(err)
	}
	dim := near.SampleShape()[0]
	meanOf := func(ds *Dataset) []float64 {
		out := make([]float64, dim)
		for i := 0; i < ds.Len(); i++ {
			row := ds.X.Data()[i*dim : (i+1)*dim]
			for o, v := range row {
				out[o] += float64(v)
			}
		}
		for o := range out {
			out[o] /= float64(ds.Len())
		}
		return out
	}
	mn, mf := meanOf(near), meanOf(far)
	var gap float64
	for o := range mn {
		gap += math.Abs(mn[o] - mf[o])
	}
	gap /= float64(dim)
	if gap < 0.05 {
		t.Fatalf("mean per-dimension gap %v between near and far domains, want >= 0.05", gap)
	}
}

func TestGenerateWithLabelsRejectsBadLabel(t *testing.T) {
	suite, err := NewStandardSuite(7)
	if err != nil {
		t.Fatal(err)
	}
	_, err = suite.Target10.GenerateWithLabels([]int{0, 99}, rand.New(rand.NewSource(1)))
	if !errors.Is(err, ErrData) {
		t.Fatalf("expected ErrData, got %v", err)
	}
}

func TestLabelNoiseApplied(t *testing.T) {
	suite, err := NewStandardSuite(7)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NewDomain(suite.Universe, DomainSpec{
		Name: "noisy", NumClasses: 10,
		PrototypeSpread: 1, LatentNoise: 0.1, ObsNoise: 0.1,
		LabelNoise: 0.5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, 1000)
	ds, err := noisy.GenerateWithLabels(labels, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	var flipped int
	for _, y := range ds.Y {
		if y != 0 {
			flipped++
		}
	}
	// 50% noise, 9/10 of redraws land off-class: expect ~450 flips.
	if flipped < 300 || flipped > 600 {
		t.Fatalf("flipped %d of 1000, want ~450", flipped)
	}
}

func TestNewDomainValidation(t *testing.T) {
	u, err := NewUniverse(8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []DomainSpec{
		{Name: "c", NumClasses: 1, PrototypeSpread: 1},
		{Name: "s", NumClasses: 4, PrototypeSpread: 0},
		{Name: "h", NumClasses: 4, PrototypeSpread: 1, HardFraction: 1.5},
		{Name: "l", NumClasses: 4, PrototypeSpread: 1, LabelNoise: -0.1},
	}
	for _, spec := range bad {
		if _, err := NewDomain(u, spec); !errors.Is(err, ErrData) {
			t.Fatalf("spec %q: expected ErrData, got %v", spec.Name, err)
		}
	}
}

func TestQuickSubsetPreservesLabels(t *testing.T) {
	ds := testDataset(t, 50, 4, 5)
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		idx := make([]int, len(raw))
		for i, r := range raw {
			idx[i] = int(r) % 50
		}
		sub, err := ds.Subset(idx)
		if err != nil {
			return false
		}
		for i, id := range idx {
			if sub.Y[i] != ds.Y[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
