package data

import (
	"errors"
	"math/rand"
	"testing"

	"fedfteds/internal/tensor"
)

func iterDataset(t *testing.T, n, feat, classes int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	x := tensor.New(n, feat)
	x.FillNormal(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	ds, err := NewDataset(x, y, classes)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestBatchIterMatchesSubsetBatches pins the iterator to the exact batch
// composition of the materializing path it replaces: Subset(indices) followed
// by Batches(size, rng) with the same rng stream.
func TestBatchIterMatchesSubsetBatches(t *testing.T) {
	ds := iterDataset(t, 57, 6, 4)
	indices := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53}
	for _, size := range []int{1, 4, 7, 16, 32} {
		sub, err := ds.Subset(indices)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sub.Batches(size, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewBatchIter(ds, indices, size)
		if err != nil {
			t.Fatal(err)
		}
		it.Reset(rand.New(rand.NewSource(99)))
		for bi, wb := range want {
			gb, ok := it.Next()
			if !ok {
				t.Fatalf("size %d: iterator exhausted at batch %d/%d", size, bi, len(want))
			}
			if !gb.X.Equal(wb.X) {
				t.Fatalf("size %d batch %d: features differ", size, bi)
			}
			if len(gb.Y) != len(wb.Y) {
				t.Fatalf("size %d batch %d: %d labels, want %d", size, bi, len(gb.Y), len(wb.Y))
			}
			for i := range gb.Y {
				if gb.Y[i] != wb.Y[i] {
					t.Fatalf("size %d batch %d label %d: %d vs %d", size, bi, i, gb.Y[i], wb.Y[i])
				}
			}
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("size %d: iterator has extra batches", size)
		}
	}
}

func TestBatchIterWholeDatasetSequential(t *testing.T) {
	ds := iterDataset(t, 10, 3, 2)
	it, err := NewBatchIter(ds, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if it.Len() != 10 {
		t.Fatalf("Len = %d, want 10", it.Len())
	}
	it.Reset(nil)
	var seen int
	for {
		b, ok := it.Next()
		if !ok {
			break
		}
		for i := range b.Y {
			if b.Y[i] != ds.Y[seen+i] {
				t.Fatalf("sequential order broken at %d", seen+i)
			}
		}
		seen += len(b.Y)
	}
	if seen != 10 {
		t.Fatalf("covered %d samples, want 10", seen)
	}
}

func TestBatchIterRejectsBadInput(t *testing.T) {
	ds := iterDataset(t, 5, 2, 2)
	if _, err := NewBatchIter(ds, nil, 0); !errors.Is(err, ErrData) {
		t.Fatalf("size 0: got %v, want ErrData", err)
	}
	if _, err := NewBatchIter(ds, []int{0, 9}, 2); !errors.Is(err, ErrData) {
		t.Fatalf("out-of-range index: got %v, want ErrData", err)
	}
}

// TestBatchIterRebindReusesBuffers checks that Bind hops between datasets of
// the same family without losing correctness.
func TestBatchIterRebindReusesBuffers(t *testing.T) {
	a := iterDataset(t, 20, 4, 3)
	b := iterDataset(t, 12, 4, 3)
	it, err := NewBatchIter(a, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	it.Reset(nil)
	if _, ok := it.Next(); !ok {
		t.Fatal("first dataset yielded nothing")
	}
	if err := it.Bind(b, []int{0, 1, 2, 3, 4}, 2); err != nil {
		t.Fatal(err)
	}
	it.Reset(nil)
	var total int
	for {
		batch, ok := it.Next()
		if !ok {
			break
		}
		total += len(batch.Y)
		for i := range batch.Y {
			if batch.Y[i] != b.Y[total-len(batch.Y)+i] {
				t.Fatal("rebind produced wrong labels")
			}
		}
	}
	if total != 5 {
		t.Fatalf("rebind covered %d samples, want 5", total)
	}
}

// TestBatchesNilRNGSharesStorage pins the view-batch optimization: with a nil
// rng, batches alias the dataset instead of copying it.
func TestBatchesNilRNGSharesStorage(t *testing.T) {
	ds := iterDataset(t, 8, 2, 2)
	batches, err := ds.Batches(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("%d batches, want 2", len(batches))
	}
	ds.X.Data()[0] = 42
	if batches[0].X.Data()[0] != 42 {
		t.Fatal("nil-rng batches no longer share storage (copy-free eval broken)")
	}
}
