package data

import (
	"fmt"
	"math"
	"math/rand"

	"fedfteds/internal/seeds"
	"fedfteds/internal/tensor"
)

// universeSaturation scales the tanh nonlinearity of the rendering. Values
// above 1 push a substantial share of activations into the saturated region,
// making the inverse map — the job of the feature extractor — genuinely
// nonlinear.
const universeSaturation = 1.6

// Universe is the generative structure shared across synthetic domains: one
// fixed *nonlinear* rendering from a latent class space to the observation
// space, x = tanh(sat·(W z + b)). Domains rendered through the same universe
// share low-level structure, which is what makes a feature extractor
// pretrained on one domain transfer to the others — the mechanism behind the
// paper's pretraining gains. The nonlinearity matters: with a linear
// rendering every task would be linearly separable in observation space and
// neither pretraining nor partial freezing would have any value to measure.
type Universe struct {
	// LatentDim is the dimensionality of the class-prototype space.
	LatentDim int
	// ObsDim is the dimensionality of observations.
	ObsDim int

	mix  *tensor.Tensor // (ObsDim, LatentDim)
	bias *tensor.Tensor // (ObsDim)
}

// NewUniverse builds a universe with a deterministic random rendering map.
func NewUniverse(latentDim, obsDim int, seed int64) (*Universe, error) {
	if latentDim <= 1 || obsDim < latentDim {
		return nil, fmt.Errorf("%w: universe dims latent=%d obs=%d", ErrData, latentDim, obsDim)
	}
	rng := seeds.Source(seed)
	mix := tensor.New(obsDim, latentDim)
	mix.FillNormal(rng, 0, float32(1.0/math.Sqrt(float64(latentDim))))
	bias := tensor.New(obsDim)
	bias.FillNormal(rng, 0, 0.2)
	return &Universe{LatentDim: latentDim, ObsDim: obsDim, mix: mix, bias: bias}, nil
}

// DomainSpec describes one synthetic classification domain.
type DomainSpec struct {
	// Name identifies the domain in reports (e.g. "synthc10").
	Name string
	// NumClasses is the label-space size.
	NumClasses int
	// PrototypeSpread scales class prototypes; larger means more separable.
	PrototypeSpread float64
	// LatentNoise is the within-class standard deviation in latent space.
	LatentNoise float64
	// ObsNoise is additive observation noise.
	ObsNoise float64
	// HardFraction of samples are boundary mixtures of two classes; these
	// are the genuinely informative samples entropy selection should find.
	HardFraction float64
	// LabelNoise is the fraction of samples with uniformly re-drawn labels.
	LabelNoise float64
	// NumModes gives each class this many latent modes (sub-clusters);
	// zero or one means a single mode. One mode is dominant, the rest are
	// rare: cleanly labeled and learnable but underrepresented. These rare
	// modes are the epistemically hard samples that entropy-based selection
	// is designed to find (high entropy until learned, then resolved) —
	// unlike boundary mixtures, training on them genuinely helps.
	NumModes int
	// ModeSpread is the latent distance of mode centers from the class
	// prototype.
	ModeSpread float64
	// RareModeMass is the total probability of the non-dominant modes.
	RareModeMass float64
	// Distorted applies a domain-specific per-dimension gain and shift
	// before the shared nonlinearity, modeling a far domain whose low-level
	// statistics differ (the speech-command analogue).
	Distorted bool
	// Seed determines the domain's class prototypes (and distortion).
	Seed int64
}

// Domain is a sampleable synthetic classification task.
type Domain struct {
	// Spec echoes the construction parameters.
	Spec DomainSpec

	universe   *Universe
	prototypes *tensor.Tensor // (C, LatentDim)
	modes      *tensor.Tensor // (C, NumModes, LatentDim) mode offsets; nil for single-mode
	gain       []float64      // per-obs-dim gain (distorted domains; nil otherwise)
	shift      []float64      // per-obs-dim shift
}

// NewDomain draws class prototypes for spec inside u.
func NewDomain(u *Universe, spec DomainSpec) (*Domain, error) {
	if spec.NumClasses <= 1 {
		return nil, fmt.Errorf("%w: domain %q classes %d", ErrData, spec.Name, spec.NumClasses)
	}
	if spec.PrototypeSpread <= 0 || spec.LatentNoise < 0 || spec.ObsNoise < 0 {
		return nil, fmt.Errorf("%w: domain %q noise config", ErrData, spec.Name)
	}
	if spec.HardFraction < 0 || spec.HardFraction > 1 || spec.LabelNoise < 0 || spec.LabelNoise > 1 {
		return nil, fmt.Errorf("%w: domain %q fraction config", ErrData, spec.Name)
	}
	if spec.NumModes > 1 && (spec.ModeSpread <= 0 || spec.RareModeMass < 0 || spec.RareModeMass >= 1) {
		return nil, fmt.Errorf("%w: domain %q mode config", ErrData, spec.Name)
	}
	rng := seeds.Source(spec.Seed)
	protos := tensor.New(spec.NumClasses, u.LatentDim)
	protos.FillNormal(rng, 0, float32(spec.PrototypeSpread))
	d := &Domain{Spec: spec, universe: u, prototypes: protos}
	if spec.NumModes > 1 {
		d.modes = tensor.New(spec.NumClasses, spec.NumModes, u.LatentDim)
		d.modes.FillNormal(rng, 0, float32(spec.ModeSpread))
		// The dominant mode sits at the prototype itself.
		for c := 0; c < spec.NumClasses; c++ {
			for j := 0; j < u.LatentDim; j++ {
				d.modes.Set(0, c, 0, j)
			}
		}
	}
	if spec.Distorted {
		d.gain = make([]float64, u.ObsDim)
		d.shift = make([]float64, u.ObsDim)
		for o := range d.gain {
			d.gain[o] = 0.6 + 0.8*rng.Float64() // [0.6, 1.4]
			d.shift[o] = 0.6 * rng.NormFloat64()
		}
	}
	return d, nil
}

// ObsShape returns the per-sample observation shape.
func (d *Domain) ObsShape() []int { return []int{d.universe.ObsDim} }

// GenerateBalanced draws n samples with (nearly) equal class counts.
func (d *Domain) GenerateBalanced(n int, rng *rand.Rand) (*Dataset, error) {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % d.Spec.NumClasses
	}
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return d.GenerateWithLabels(labels, rng)
}

// GenerateWithLabels draws one sample per requested label.
func (d *Domain) GenerateWithLabels(labels []int, rng *rand.Rand) (*Dataset, error) {
	n := len(labels)
	x := tensor.New(n, d.universe.ObsDim)
	y := make([]int, n)
	latent := make([]float64, d.universe.LatentDim)
	for i, c := range labels {
		if c < 0 || c >= d.Spec.NumClasses {
			return nil, fmt.Errorf("%w: label %d for domain %q", ErrData, c, d.Spec.Name)
		}
		d.sampleLatent(latent, c, rng)
		d.render(x.Data()[i*d.universe.ObsDim:(i+1)*d.universe.ObsDim], latent, rng)
		y[i] = c
		if d.Spec.LabelNoise > 0 && rng.Float64() < d.Spec.LabelNoise {
			y[i] = rng.Intn(d.Spec.NumClasses)
		}
	}
	return NewDataset(x, y, d.Spec.NumClasses)
}

// sampleLatent fills latent with a draw for class c: the class prototype
// plus noise, with a HardFraction share of samples mixed toward another
// class's prototype. The mixing weight is drawn from a *continuum* —
// λ = 1 − 0.45·u², u ~ U[0,1) — so sample difficulty is graded rather than
// clustered: most mixed samples stay nearly pure and a thin tail approaches
// the decision boundary (λ → 0.55). A graded continuum is what makes
// entropy-based selection dynamic, as in the paper: as the model learns the
// moderately-hard samples, their entropy falls and the selection moves on.
func (d *Domain) sampleLatent(latent []float64, c int, rng *rand.Rand) {
	proto := d.prototypes.Row(c).Data()
	// Mode offset: dominant mode (index 0, zero offset) with probability
	// 1−RareModeMass, otherwise one of the rare modes.
	var mode []float32
	if d.modes != nil {
		m := 0
		if rng.Float64() < d.Spec.RareModeMass {
			m = 1 + rng.Intn(d.Spec.NumModes-1)
		}
		lo := (c*d.Spec.NumModes + m) * d.universe.LatentDim
		mode = d.modes.Data()[lo : lo+d.universe.LatentDim]
	}
	if d.Spec.HardFraction > 0 && rng.Float64() < d.Spec.HardFraction {
		other := rng.Intn(d.Spec.NumClasses - 1)
		if other >= c {
			other++
		}
		op := d.prototypes.Row(other).Data()
		u := rng.Float64()
		lam := 1 - 0.45*u*u
		for j := range latent {
			latent[j] = lam*float64(proto[j]) + (1-lam)*float64(op[j]) +
				d.Spec.LatentNoise*rng.NormFloat64()
			if mode != nil {
				latent[j] += lam * float64(mode[j])
			}
		}
		return
	}
	for j := range latent {
		latent[j] = float64(proto[j]) + d.Spec.LatentNoise*rng.NormFloat64()
		if mode != nil {
			latent[j] += float64(mode[j])
		}
	}
}

// render maps a latent point to observation space through the universe's
// shared nonlinearity, with the domain's optional distortion applied first.
func (d *Domain) render(dst []float32, latent []float64, rng *rand.Rand) {
	u := d.universe
	md := u.mix.Data()
	for o := 0; o < u.ObsDim; o++ {
		var s float64
		row := md[o*u.LatentDim : (o+1)*u.LatentDim]
		for j, w := range row {
			s += float64(w) * latent[j]
		}
		s += float64(u.bias.Data()[o])
		if d.gain != nil {
			s = d.gain[o]*s + d.shift[o]
		}
		s = math.Tanh(universeSaturation * s)
		s += d.Spec.ObsNoise * rng.NormFloat64()
		dst[o] = float32(s)
	}
}

// StandardSuite bundles the four domains used throughout the experiments,
// mirroring the paper's corpora.
type StandardSuite struct {
	// Universe is the shared rendering structure.
	Universe *Universe
	// Source is the pretraining domain (Small-ImageNet analogue, broad).
	Source *Domain
	// SourceClose is the closer pretraining domain (CIFAR-100 analogue used
	// in Table I's pretraining comparison).
	SourceClose *Domain
	// Target10 is the 10-class downstream task (CIFAR-10 analogue).
	Target10 *Domain
	// Target100 is the 100-class downstream task (CIFAR-100 analogue).
	Target100 *Domain
	// Far is the cross-domain task (Google-Speech-Commands analogue).
	Far *Domain
}

// NewStandardSuite constructs the domain suite with deterministic structure
// derived from seed.
func NewStandardSuite(seed int64) (*StandardSuite, error) {
	u, err := NewUniverse(16, 64, seed)
	if err != nil {
		return nil, err
	}
	mk := func(spec DomainSpec) (*Domain, error) { return NewDomain(u, spec) }

	// The broad source has the most classes (Small-ImageNet analogue), the
	// close source fewer (CIFAR-100-as-source analogue); richer sources
	// yield better transferable features, matching Table I's ordering.
	source, err := mk(DomainSpec{
		Name: "synthnet-s", NumClasses: 40,
		PrototypeSpread: 1.0, LatentNoise: 0.70, ObsNoise: 0.35,
		HardFraction: 0.15, NumModes: 3, ModeSpread: 1.3, RareModeMass: 0.3,
		Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	sourceClose, err := mk(DomainSpec{
		Name: "synthc100-src", NumClasses: 15,
		PrototypeSpread: 1.0, LatentNoise: 0.70, ObsNoise: 0.35,
		HardFraction: 0.15, NumModes: 3, ModeSpread: 1.3, RareModeMass: 0.3,
		Seed: seed + 4,
	})
	if err != nil {
		return nil, err
	}
	t10, err := mk(DomainSpec{
		Name: "synthc10", NumClasses: 10,
		PrototypeSpread: 1.0, LatentNoise: 0.80, ObsNoise: 0.40,
		HardFraction: 0.15, NumModes: 3, ModeSpread: 1.3, RareModeMass: 0.3,
		Seed: seed + 2,
	})
	if err != nil {
		return nil, err
	}
	t100, err := mk(DomainSpec{
		Name: "synthc100", NumClasses: 100,
		PrototypeSpread: 1.0, LatentNoise: 0.85, ObsNoise: 0.40,
		HardFraction: 0.15, NumModes: 3, ModeSpread: 1.3, RareModeMass: 0.3,
		Seed: seed + 3,
	})
	if err != nil {
		return nil, err
	}
	far, err := mk(DomainSpec{
		Name: "synthgsc", NumClasses: 12,
		PrototypeSpread: 0.9, LatentNoise: 0.80, ObsNoise: 0.40,
		HardFraction: 0.15, NumModes: 3, ModeSpread: 1.3, RareModeMass: 0.3,
		Distorted: true, Seed: seed + 5,
	})
	if err != nil {
		return nil, err
	}
	return &StandardSuite{
		Universe:    u,
		Source:      source,
		SourceClose: sourceClose,
		Target10:    t10,
		Target100:   t100,
		Far:         far,
	}, nil
}
