package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestModeMassFractions(t *testing.T) {
	// With RareModeMass = 0.3 and 3 modes, roughly 70% of samples should sit
	// near the dominant mode. Verify via latent-space distance statistics:
	// samples are closer to their class prototype than rare-mode samples.
	suite, err := NewStandardSuite(17)
	if err != nil {
		t.Fatal(err)
	}
	d := suite.Target10
	if d.Spec.NumModes <= 1 {
		t.Skip("target domain has no modes")
	}
	rng := rand.New(rand.NewSource(1))
	// Generate many samples of class 0 and bucket them by nearest mode.
	labels := make([]int, 3000)
	ds, err := d.GenerateWithLabels(labels, rng)
	if err != nil {
		t.Fatal(err)
	}
	_ = ds
	// Count mode draws directly through the generator's statistics: regen
	// with a fresh rng and tally the latent mode branch via Monte Carlo on
	// the public behaviour — the observation-space spread of rare modes
	// makes class variance larger than a single-mode domain's.
	single, err := NewDomain(suite.Universe, DomainSpec{
		Name: "single", NumClasses: 10,
		PrototypeSpread: d.Spec.PrototypeSpread,
		LatentNoise:     d.Spec.LatentNoise,
		ObsNoise:        d.Spec.ObsNoise,
		HardFraction:    d.Spec.HardFraction,
		Seed:            d.Spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	multi := classVariance(t, d, 0)
	mono := classVariance(t, single, 0)
	if multi <= mono {
		t.Fatalf("multi-mode class variance %v <= single-mode %v", multi, mono)
	}
}

// classVariance estimates the observation-space variance of one class.
func classVariance(t *testing.T, d *Domain, class int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	labels := make([]int, 800)
	for i := range labels {
		labels[i] = class
	}
	ds, err := d.GenerateWithLabels(labels, rng)
	if err != nil {
		t.Fatal(err)
	}
	dim := ds.SampleShape()[0]
	mean := make([]float64, dim)
	for i := 0; i < ds.Len(); i++ {
		row := ds.X.Data()[i*dim : (i+1)*dim]
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(ds.Len())
	}
	var variance float64
	for i := 0; i < ds.Len(); i++ {
		row := ds.X.Data()[i*dim : (i+1)*dim]
		for j, v := range row {
			dlt := float64(v) - mean[j]
			variance += dlt * dlt
		}
	}
	return variance / float64(ds.Len())
}

func TestObservationsBoundedByTanhPlusNoise(t *testing.T) {
	// |x| ≤ 1 + a few noise sigmas, since the rendering saturates at ±1.
	suite, err := NewStandardSuite(18)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ds, err := suite.Target10.GenerateBalanced(1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	bound := 1 + 6*suite.Target10.Spec.ObsNoise
	for i, v := range ds.X.Data() {
		if math.Abs(float64(v)) > bound {
			t.Fatalf("observation %d = %v beyond tanh+noise bound %v", i, v, bound)
		}
	}
}

func TestQuickGenerateRespectsLabels(t *testing.T) {
	suite, err := NewStandardSuite(19)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		labels := make([]int, len(raw))
		for i, r := range raw {
			labels[i] = int(r) % 10
		}
		ds, err := suite.Target10.GenerateWithLabels(labels, rand.New(rand.NewSource(4)))
		if err != nil {
			return false
		}
		for i := range labels {
			if ds.Y[i] != labels[i] { // no label noise configured
				return false
			}
		}
		return ds.X.IsFinite()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedGenerationNearUniform(t *testing.T) {
	suite, err := NewStandardSuite(20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// Non-divisible count: histogram must differ by at most 1 across classes.
	ds, err := suite.Target10.GenerateBalanced(105, rng)
	if err != nil {
		t.Fatal(err)
	}
	hist := ds.ClassHistogram()
	minC, maxC := hist[0], hist[0]
	for _, c := range hist {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 1 {
		t.Fatalf("balanced histogram spread %d: %v", maxC-minC, hist)
	}
}
