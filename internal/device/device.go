// Package device models client capability tiers for per-client partial
// training. A Profile describes a device class (relative compute rate,
// memory headroom, battery class) and maps deterministically onto a layer
// mask over a model's named groups: the largest top-suffix of groups whose
// cumulative training cost fits the profile's budget. Low-capability tiers
// therefore train (and ship) only the upper layers, while the "full" tier
// reproduces today's whole-model path bit-identically.
//
// A Distribution assigns tiers to a client population. Parsing, rendering
// and assignment are all canonical and deterministic, so tier setups can be
// fingerprinted into run tags: resuming a checkpoint under an edited tier
// distribution is refused the same way an edited strategy is.
package device

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fedfteds/internal/tensor"
)

// ErrDevice reports an invalid device or tier configuration.
var ErrDevice = errors.New("device: invalid configuration")

// streamTag salts the tier-assignment rng stream so enabling tiers never
// perturbs the scheduling, straggler, or training streams.
const streamTag uint64 = 0x71E125

// Battery classifies a device's energy headroom; it scales down the
// training budget the way production FL systems gate work on charge state.
type Battery int

const (
	// BatteryLow devices train only when they must (budget ×0.6).
	BatteryLow Battery = iota + 1
	// BatteryMedium devices train with a mild budget cut (×0.9).
	BatteryMedium
	// BatteryHigh devices (charging / plugged in) use their full budget.
	BatteryHigh
)

// String implements fmt.Stringer.
func (b Battery) String() string {
	switch b {
	case BatteryLow:
		return "low"
	case BatteryMedium:
		return "medium"
	case BatteryHigh:
		return "high"
	default:
		return fmt.Sprintf("Battery(%d)", int(b))
	}
}

// factor returns the battery class's budget multiplier.
func (b Battery) factor() float64 {
	switch b {
	case BatteryLow:
		return 0.6
	case BatteryMedium:
		return 0.9
	default:
		return 1.0
	}
}

// Profile describes one device capability tier.
type Profile struct {
	// Name is the tier's CLI identifier ("low", "mid", "high", "full").
	Name string
	// FLOPSFactor scales a baseline device's compute rate; tier sweeps apply
	// it to simtime.Device.FLOPSRate.
	FLOPSFactor float64
	// MemoryFrac is the fraction of the model's per-group training cost the
	// device can hold trainable, before the battery discount.
	MemoryFrac float64
	// Battery is the tier's energy class.
	Battery Battery
}

// Budget returns the effective training-cost fraction the profile affords:
// MemoryFrac discounted by the battery class.
func (p Profile) Budget() float64 { return p.MemoryFrac * p.Battery.factor() }

// MaskFor maps the profile onto a layer mask: the largest top-suffix of
// groups (costs parallel to groups, e.g. per-group FLOPs) whose cumulative
// cost, accumulated from the top, fits Budget()×total. The topmost group is
// always included — every tier can at least train the classifier head — and
// a budget ≥ 1 selects every group. The returned mask preserves the input
// (bottom-to-top) group order.
func (p Profile) MaskFor(groups []string, costs []int64) ([]string, error) {
	if len(groups) == 0 || len(groups) != len(costs) {
		return nil, fmt.Errorf("%w: %d groups with %d costs", ErrDevice, len(groups), len(costs))
	}
	total := int64(0)
	for i, c := range costs {
		if c < 0 {
			return nil, fmt.Errorf("%w: group %q has negative cost %d", ErrDevice, groups[i], c)
		}
		total += c
	}
	budget := p.Budget()
	if budget <= 0 {
		return nil, fmt.Errorf("%w: profile %q has non-positive budget %v", ErrDevice, p.Name, budget)
	}
	if total == 0 || budget >= 1 {
		return append([]string(nil), groups...), nil
	}
	afford := budget * float64(total)
	lowest := len(groups) - 1 // topmost group always trains
	cum := costs[lowest]
	for lowest > 0 && float64(cum+costs[lowest-1]) <= afford+1e-9 {
		lowest--
		cum += costs[lowest]
	}
	return append([]string(nil), groups[lowest:]...), nil
}

// Built-in tiers. Budgets are chosen so that on the canonical four-group
// models (low/mid/up/classifier) "full" trains everything and the lower
// tiers progressively keep only the upper groups.
var builtin = []Profile{
	{Name: "low", FLOPSFactor: 0.25, MemoryFrac: 0.15, Battery: BatteryLow},
	{Name: "mid", FLOPSFactor: 0.5, MemoryFrac: 0.55, Battery: BatteryMedium},
	{Name: "high", FLOPSFactor: 0.8, MemoryFrac: 0.95, Battery: BatteryHigh},
	{Name: "full", FLOPSFactor: 1.0, MemoryFrac: 1.0, Battery: BatteryHigh},
}

// TierNames lists the built-in tier identifiers in capability order.
func TierNames() []string {
	out := make([]string, len(builtin))
	for i, p := range builtin {
		out[i] = p.Name
	}
	return out
}

// Lookup resolves a built-in tier by name.
func Lookup(name string) (Profile, error) {
	for _, p := range builtin {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("%w: unknown tier %q (want one of %s)",
		ErrDevice, name, strings.Join(TierNames(), ", "))
}

// Distribution is a weighted mix of tiers over a client population.
type Distribution struct {
	tiers   []string // ascending tier name, unique
	weights []int    // positive, parallel to tiers
}

// ParseDistribution parses a "tier:weight,tier:weight" spec (e.g.
// "low:1,mid:2,full:1"). Weights are positive integers; duplicate tiers
// merge by summing. A bare tier name means weight 1, so "full" pins every
// client to the full tier.
func ParseDistribution(spec string) (*Distribution, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("%w: empty tier distribution", ErrDevice)
	}
	acc := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%w: empty tier entry in %q", ErrDevice, spec)
		}
		name, w := part, 1
		if i := strings.IndexByte(part, ':'); i >= 0 {
			name = part[:i]
			n, err := strconv.Atoi(part[i+1:])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%w: tier weight %q must be a positive integer", ErrDevice, part[i+1:])
			}
			w = n
		}
		if _, err := Lookup(name); err != nil {
			return nil, err
		}
		acc[name] += w
	}
	d := &Distribution{}
	for name := range acc {
		d.tiers = append(d.tiers, name)
	}
	sort.Strings(d.tiers)
	d.weights = make([]int, len(d.tiers))
	for i, name := range d.tiers {
		d.weights[i] = acc[name]
	}
	return d, nil
}

// String renders the distribution canonically (tiers ascending by name),
// so equal distributions always fingerprint identically.
func (d *Distribution) String() string {
	var sb strings.Builder
	for i, name := range d.tiers {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s:%d", name, d.weights[i])
	}
	return sb.String()
}

// Tiers returns the distribution's tier names, ascending.
func (d *Distribution) Tiers() []string { return append([]string(nil), d.tiers...) }

// Assign deterministically maps n clients onto tiers: per-tier counts by
// largest remainder over the weights (ties to the earlier tier name), then
// a seed-derived permutation scatters the tiers across client IDs so tier
// never correlates with the ID-ordered data partition.
func (d *Distribution) Assign(n int, seed int64) []string {
	if n <= 0 {
		return nil
	}
	totalW := 0
	for _, w := range d.weights {
		totalW += w
	}
	counts := make([]int, len(d.tiers))
	rems := make([]float64, len(d.tiers))
	assigned := 0
	for i, w := range d.weights {
		exact := float64(n) * float64(w) / float64(totalW)
		counts[i] = int(exact)
		rems[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, len(d.tiers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rems[order[a]] > rems[order[b]] })
	for i := 0; assigned < n; i++ {
		counts[order[i%len(order)]]++
		assigned++
	}
	flat := make([]string, 0, n)
	for i, name := range d.tiers {
		for j := 0; j < counts[i]; j++ {
			flat = append(flat, name)
		}
	}
	out := make([]string, n)
	perm := tensor.NewRand(uint64(seed), streamTag).Perm(n)
	for i, p := range perm {
		out[p] = flat[i]
	}
	return out
}
