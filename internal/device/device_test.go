package device

import (
	"reflect"
	"strings"
	"testing"
)

var testGroups = []string{"low", "mid", "up", "classifier"}
var testCosts = []int64{4000, 3000, 2000, 1000}

func TestLookup(t *testing.T) {
	for _, name := range TierNames() {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("Lookup(%q) returned profile %q", name, p.Name)
		}
		if p.Budget() <= 0 || p.Budget() > 1 {
			t.Fatalf("tier %q budget %v out of (0, 1]", name, p.Budget())
		}
	}
	if _, err := Lookup("ultra"); err == nil {
		t.Fatal("Lookup of unknown tier succeeded")
	}
}

// isSuffix reports whether mask is a (non-empty) top-suffix of groups.
func isSuffix(mask, groups []string) bool {
	if len(mask) == 0 || len(mask) > len(groups) {
		return false
	}
	return reflect.DeepEqual(mask, groups[len(groups)-len(mask):])
}

func TestMaskForProperties(t *testing.T) {
	prevLen := 0
	for _, name := range []string{"low", "mid", "high", "full"} {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		mask, err := p.MaskFor(testGroups, testCosts)
		if err != nil {
			t.Fatalf("tier %q: %v", name, err)
		}
		if !isSuffix(mask, testGroups) {
			t.Fatalf("tier %q mask %v is not a top-suffix of %v", name, mask, testGroups)
		}
		if mask[len(mask)-1] != "classifier" {
			t.Fatalf("tier %q mask %v excludes the top group", name, mask)
		}
		// TierNames is capability-ascending, so masks must not shrink.
		if len(mask) < prevLen {
			t.Fatalf("tier %q mask %v smaller than the previous tier's", name, mask)
		}
		prevLen = len(mask)
		again, err := p.MaskFor(testGroups, testCosts)
		if err != nil || !reflect.DeepEqual(mask, again) {
			t.Fatalf("tier %q mask not deterministic: %v vs %v (%v)", name, mask, again, err)
		}
	}
	full, _ := Lookup("full")
	mask, err := full.MaskFor(testGroups, testCosts)
	if err != nil || len(mask) != len(testGroups) {
		t.Fatalf("full tier mask %v (%v), want all groups", mask, err)
	}
}

func TestMaskForErrors(t *testing.T) {
	p, _ := Lookup("mid")
	if _, err := p.MaskFor(nil, nil); err == nil {
		t.Fatal("MaskFor with no groups succeeded")
	}
	if _, err := p.MaskFor(testGroups, testCosts[:2]); err == nil {
		t.Fatal("MaskFor with mismatched costs succeeded")
	}
	if _, err := p.MaskFor([]string{"a", "b"}, []int64{1, -1}); err == nil {
		t.Fatal("MaskFor with negative cost succeeded")
	}
}

func TestParseDistribution(t *testing.T) {
	d, err := ParseDistribution("mid:2, low:1,full:1,mid:1")
	if err != nil {
		t.Fatal(err)
	}
	// Canonical: ascending tier names, duplicates merged.
	if got := d.String(); got != "full:1,low:1,mid:3" {
		t.Fatalf("canonical spec = %q", got)
	}
	if got := d.Tiers(); !reflect.DeepEqual(got, []string{"full", "low", "mid"}) {
		t.Fatalf("Tiers() = %v", got)
	}
	bare, err := ParseDistribution("full")
	if err != nil || bare.String() != "full:1" {
		t.Fatalf("bare spec: %v (%v)", bare, err)
	}
	for _, bad := range []string{"", " ,", "low:0", "low:-1", "low:x", "warp:1"} {
		if _, err := ParseDistribution(bad); err == nil {
			t.Fatalf("ParseDistribution(%q) succeeded", bad)
		}
	}
}

func TestAssignDeterministicCounts(t *testing.T) {
	d, err := ParseDistribution("low:1,mid:2,full:1")
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	got := d.Assign(n, 42)
	if len(got) != n {
		t.Fatalf("Assign length %d, want %d", len(got), n)
	}
	counts := map[string]int{}
	for _, name := range got {
		if _, err := Lookup(name); err != nil {
			t.Fatalf("assigned unknown tier %q", name)
		}
		counts[name]++
	}
	// Largest remainder over weights 1:2:1 of 10 clients: full and low tie
	// at remainder 0.5 and the extra slot goes to the earlier canonical name.
	want := map[string]int{"full": 3, "low": 2, "mid": 5}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("tier counts %v, want %v", counts, want)
	}
	if again := d.Assign(n, 42); !reflect.DeepEqual(got, again) {
		t.Fatalf("Assign not deterministic: %v vs %v", got, again)
	}
	other := d.Assign(n, 43)
	if reflect.DeepEqual(got, other) {
		t.Fatal("Assign ignores the seed")
	}
	if d.Assign(0, 42) != nil {
		t.Fatal("Assign(0) should be nil")
	}
}

func TestAssignSingleTier(t *testing.T) {
	d, err := ParseDistribution("full:3")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range d.Assign(7, 1) {
		if name != "full" {
			t.Fatalf("single-tier distribution assigned %q", name)
		}
	}
	if got := d.String(); !strings.HasPrefix(got, "full:") {
		t.Fatalf("String() = %q", got)
	}
}
