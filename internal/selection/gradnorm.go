package selection

import (
	"math"
	"math/rand"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/nn"
)

// GradNorm selects samples with the largest per-sample gradient-norm upper
// bound, the importance score of Li et al. ("Sample-level data selection for
// federated learning", INFOCOM 2021), which the paper discusses as related
// work. For cross-entropy on logits, the gradient with respect to the logits
// of sample i is p_i − onehot(y_i); its L2 norm bounds the parameter
// gradient norm up to the activation norm, so ranking by ‖p − y‖₂ needs only
// the same single forward pass as entropy selection.
//
// Unlike entropy selection it uses labels, so it emphasizes mislabeled and
// misclassified samples even when the model is confident — a different
// failure mode than EDS (see the acquisition ablation).
type GradNorm struct{}

var _ Selector = GradNorm{}

// Name implements Selector.
func (GradNorm) Name() string { return "gradnorm" }

// ScoringPasses implements Selector.
func (GradNorm) ScoringPasses() int { return 1 }

// Select implements Selector.
func (GradNorm) Select(m *models.Model, ds *data.Dataset, fraction float64, rng *rand.Rand) ([]int, error) {
	k, err := targetCount(ds.Len(), fraction)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, 0, ds.Len())
	batches, err := ds.Batches(scoreBatchSize, nil)
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		logits := m.Forward(b.X, false)
		probs := nn.Softmax(logits, 1.0)
		n, c := probs.Dim(0), probs.Dim(1)
		for i := 0; i < n; i++ {
			row := probs.Data()[i*c : (i+1)*c]
			var s float64
			for j, p := range row {
				d := float64(p)
				if j == b.Y[i] {
					d -= 1
				}
				s += d * d
			}
			scores = append(scores, math.Sqrt(s))
		}
	}
	return topKByScore(scores, k), nil
}
