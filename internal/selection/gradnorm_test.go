package selection

import (
	"math"
	"math/rand"
	"testing"

	"fedfteds/internal/data"
	"fedfteds/internal/tensor"
)

func TestGradNormSelectsMisclassified(t *testing.T) {
	m := testModel(t)
	// Build a dataset where half the labels are deliberately wrong: the
	// gradient-norm score must prefer the mislabeled samples, because the
	// model's (random but consistent) predictions are furthest from those
	// labels on average.
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(60, 8)
	x.FillNormal(rng, 0, 1)
	y := make([]int, 60)
	for i := range y {
		y[i] = i % 4
	}
	ds, err := data.NewDataset(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := GradNorm{}.Select(m, ds, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 15 {
		t.Fatalf("selected %d, want 15", len(idx))
	}
	// Scores of selected samples must dominate the unselected ones.
	all := gradNormScores(t, m, ds)
	sel := map[int]bool{}
	minSel := math.Inf(1)
	for _, i := range idx {
		sel[i] = true
		if all[i] < minSel {
			minSel = all[i]
		}
	}
	for i, s := range all {
		if !sel[i] && s > minSel+1e-12 {
			t.Fatalf("unselected sample %d has score %v > min selected %v", i, s, minSel)
		}
	}
}

// gradNormScores recomputes the selector's scores for verification.
func gradNormScores(t *testing.T, m interface {
	Forward(*tensor.Tensor, bool) *tensor.Tensor
}, ds *data.Dataset) []float64 {
	t.Helper()
	logits := m.Forward(ds.X, false)
	n, c := logits.Dim(0), logits.Dim(1)
	probs := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		row := logits.Data()[i*c : (i+1)*c]
		// Stable softmax.
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		p := make([]float64, c)
		for j, v := range row {
			p[j] = math.Exp(float64(v - maxv))
			sum += p[j]
		}
		var s float64
		for j := range p {
			d := p[j] / sum
			if j == ds.Y[i] {
				d -= 1
			}
			s += d * d
		}
		probs = append(probs, math.Sqrt(s))
	}
	return probs
}

func TestGradNormScoringPassesAndName(t *testing.T) {
	if (GradNorm{}).ScoringPasses() != 1 {
		t.Fatal("GradNorm must report one scoring pass")
	}
	if (GradNorm{}).Name() != "gradnorm" {
		t.Fatal("name mismatch")
	}
}

func TestGradNormFractionValidation(t *testing.T) {
	m := testModel(t)
	ds := testDataset(t, 10)
	if _, err := (GradNorm{}).Select(m, ds, 0, nil); err == nil {
		t.Fatal("expected error for zero fraction")
	}
}
