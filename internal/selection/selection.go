// Package selection implements the client-side data-selection strategies:
// the paper's entropy-based data selection (EDS) with hardened softmax,
// random data selection (RDS), the use-everything baseline (ALL), and two
// classical active-learning acquisition functions (margin and least
// confidence) used as ablations. A batch-level entropy variant (after
// FedAvg-BE) is included to support the paper's sample-level-vs-batch-level
// argument.
package selection

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/nn"
)

// ErrSelection reports an invalid selection request.
var ErrSelection = errors.New("selection: invalid request")

// scoreBatchSize is the forward-pass batch size used when scoring local data.
const scoreBatchSize = 64

// Selector picks the subset of a client's local data used for this round's
// update. Implementations must be deterministic given the model, dataset and
// rng.
type Selector interface {
	// Name returns a short identifier used in reports ("eds", "rds", ...).
	Name() string
	// Select returns the chosen sample indices. fraction is the target share
	// of the local dataset in (0, 1]; implementations select
	// ceil(fraction·N) samples (at least one).
	Select(m *models.Model, ds *data.Dataset, fraction float64, rng *rand.Rand) ([]int, error)
	// ScoringPasses reports how many forward passes over the full local
	// dataset the selector costs; the device-time model charges for them.
	ScoringPasses() int
}

// UtilityScorer is an optional Selector extension: selectors that already
// run a scoring pass can report a client-level utility — the mean score over
// the full local dataset — from the same pass, at no extra forward cost.
// The server-side cohort scheduler (internal/sched) consumes it as the
// client's exploitation signal.
type UtilityScorer interface {
	// SelectWithUtility behaves exactly like Select and additionally returns
	// the mean per-sample score over the whole local dataset.
	SelectWithUtility(m *models.Model, ds *data.Dataset, fraction float64, rng *rand.Rand) (idx []int, utility float64, err error)
}

// targetCount converts a fraction into a sample count.
func targetCount(n int, fraction float64) (int, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("%w: fraction %v outside (0,1]", ErrSelection, fraction)
	}
	k := int(math.Ceil(fraction * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k, nil
}

// All selects every local sample (the FedFT-ALL baseline).
type All struct{}

var _ Selector = All{}

// Name implements Selector.
func (All) Name() string { return "all" }

// ScoringPasses implements Selector.
func (All) ScoringPasses() int { return 0 }

// Select implements Selector. The fraction is ignored; all indices return.
func (All) Select(_ *models.Model, ds *data.Dataset, _ float64, _ *rand.Rand) ([]int, error) {
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	return idx, nil
}

// Random selects a uniform random subset each round (RDS baselines).
type Random struct{}

var _ Selector = Random{}

// Name implements Selector.
func (Random) Name() string { return "rds" }

// ScoringPasses implements Selector.
func (Random) ScoringPasses() int { return 0 }

// Select implements Selector.
func (Random) Select(_ *models.Model, ds *data.Dataset, fraction float64, rng *rand.Rand) ([]int, error) {
	k, err := targetCount(ds.Len(), fraction)
	if err != nil {
		return nil, err
	}
	perm := rng.Perm(ds.Len())
	out := append([]int(nil), perm[:k]...)
	sort.Ints(out)
	return out, nil
}

// Entropy is the paper's entropy-based data selection: one forward pass over
// the local data, per-sample Shannon entropy of the hardened softmax
// (temperature ρ < 1), and the top-fraction most uncertain samples win.
type Entropy struct {
	// Temperature is the softmax temperature ρ (paper default 0.1). Values
	// below 1 harden the distribution so that confidently-classified samples
	// drop out of the selection; values above 1 soften it (and, per the
	// paper's ablation, hurt).
	Temperature float64
}

var _ Selector = Entropy{}

// Name implements Selector.
func (Entropy) Name() string { return "eds" }

// ScoringPasses implements Selector.
func (Entropy) ScoringPasses() int { return 1 }

// Select implements Selector.
func (e Entropy) Select(m *models.Model, ds *data.Dataset, fraction float64, rng *rand.Rand) ([]int, error) {
	idx, _, err := e.SelectWithUtility(m, ds, fraction, rng)
	return idx, err
}

var _ UtilityScorer = Entropy{}

// SelectWithUtility implements UtilityScorer: the utility is the mean
// hardened-softmax entropy over the full local dataset, computed from the
// selection scoring pass it shares with Select.
func (e Entropy) SelectWithUtility(m *models.Model, ds *data.Dataset, fraction float64, _ *rand.Rand) ([]int, float64, error) {
	if e.Temperature <= 0 {
		return nil, 0, fmt.Errorf("%w: temperature %v must be positive", ErrSelection, e.Temperature)
	}
	k, err := targetCount(ds.Len(), fraction)
	if err != nil {
		return nil, 0, err
	}
	scores, err := SampleEntropies(m, ds, e.Temperature)
	if err != nil {
		return nil, 0, err
	}
	var sum float64
	for _, s := range scores {
		sum += s
	}
	return topKByScore(scores, k), sum / float64(len(scores)), nil
}

// SampleEntropies runs the scoring forward pass and returns the hardened-
// softmax Shannon entropy of every sample (paper Eqs. 2, 3, 6).
func SampleEntropies(m *models.Model, ds *data.Dataset, temperature float64) ([]float64, error) {
	if temperature <= 0 {
		return nil, fmt.Errorf("%w: temperature %v must be positive", ErrSelection, temperature)
	}
	out := make([]float64, 0, ds.Len())
	batches, err := ds.Batches(scoreBatchSize, nil)
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		logits := m.Forward(b.X, false)
		probs := nn.Softmax(logits, temperature)
		out = append(out, nn.ShannonEntropyRows(probs)...)
	}
	return out, nil
}

// Margin selects samples with the smallest top-2 probability margin — the
// classical margin acquisition (Scheffer et al.), included as an ablation.
type Margin struct{}

var _ Selector = Margin{}

// Name implements Selector.
func (Margin) Name() string { return "margin" }

// ScoringPasses implements Selector.
func (Margin) ScoringPasses() int { return 1 }

// Select implements Selector.
func (Margin) Select(m *models.Model, ds *data.Dataset, fraction float64, rng *rand.Rand) ([]int, error) {
	k, err := targetCount(ds.Len(), fraction)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, 0, ds.Len())
	batches, err := ds.Batches(scoreBatchSize, nil)
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		logits := m.Forward(b.X, false)
		probs := nn.Softmax(logits, 1.0)
		n, c := probs.Dim(0), probs.Dim(1)
		for i := 0; i < n; i++ {
			row := probs.Data()[i*c : (i+1)*c]
			best, second := float32(-1), float32(-1)
			for _, p := range row {
				if p > best {
					second = best
					best = p
				} else if p > second {
					second = p
				}
			}
			// Smaller margin = harder: negate so topK picks smallest margins.
			scores = append(scores, -float64(best-second))
		}
	}
	return topKByScore(scores, k), nil
}

// LeastConfidence selects samples whose top-1 probability is lowest.
type LeastConfidence struct{}

var _ Selector = LeastConfidence{}

// Name implements Selector.
func (LeastConfidence) Name() string { return "leastconf" }

// ScoringPasses implements Selector.
func (LeastConfidence) ScoringPasses() int { return 1 }

// Select implements Selector.
func (LeastConfidence) Select(m *models.Model, ds *data.Dataset, fraction float64, rng *rand.Rand) ([]int, error) {
	k, err := targetCount(ds.Len(), fraction)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, 0, ds.Len())
	batches, err := ds.Batches(scoreBatchSize, nil)
	if err != nil {
		return nil, err
	}
	for _, b := range batches {
		logits := m.Forward(b.X, false)
		probs := nn.Softmax(logits, 1.0)
		n, c := probs.Dim(0), probs.Dim(1)
		for i := 0; i < n; i++ {
			row := probs.Data()[i*c : (i+1)*c]
			best := float32(-1)
			for _, p := range row {
				if p > best {
					best = p
				}
			}
			scores = append(scores, -float64(best))
		}
	}
	return topKByScore(scores, k), nil
}

// BatchEntropy ranks fixed-size batches by their mean entropy and selects
// whole batches (the FedAvg-BE style the paper argues against: batch-level
// scores mask the utility of individual samples).
type BatchEntropy struct {
	// Temperature is the softmax temperature used for scoring.
	Temperature float64
	// BatchSize is the granularity of selection; default 16.
	BatchSize int
}

var _ Selector = BatchEntropy{}

// Name implements Selector.
func (BatchEntropy) Name() string { return "batch-eds" }

// ScoringPasses implements Selector.
func (BatchEntropy) ScoringPasses() int { return 1 }

// Select implements Selector.
func (b BatchEntropy) Select(m *models.Model, ds *data.Dataset, fraction float64, rng *rand.Rand) ([]int, error) {
	temp := b.Temperature
	if temp <= 0 {
		return nil, fmt.Errorf("%w: temperature %v must be positive", ErrSelection, temp)
	}
	bs := b.BatchSize
	if bs <= 0 {
		bs = 16
	}
	k, err := targetCount(ds.Len(), fraction)
	if err != nil {
		return nil, err
	}
	scores, err := SampleEntropies(m, ds, temp)
	if err != nil {
		return nil, err
	}
	// Group indices into contiguous batches after a deterministic shuffle.
	order := rng.Perm(ds.Len())
	type group struct {
		idxs []int
		mean float64
	}
	var groups []group
	for lo := 0; lo < len(order); lo += bs {
		hi := lo + bs
		if hi > len(order) {
			hi = len(order)
		}
		g := group{idxs: append([]int(nil), order[lo:hi]...)}
		for _, i := range g.idxs {
			g.mean += scores[i]
		}
		g.mean /= float64(len(g.idxs))
		groups = append(groups, g)
	}
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].mean > groups[j].mean })
	var out []int
	for _, g := range groups {
		if len(out) >= k {
			break
		}
		out = append(out, g.idxs...)
	}
	if len(out) > k {
		out = out[:k]
	}
	sort.Ints(out)
	return out, nil
}

// topKByScore returns the indices of the k largest scores, ties broken by
// lower index, result sorted ascending.
func topKByScore(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	out := append([]int(nil), idx[:k]...)
	sort.Ints(out)
	return out
}
