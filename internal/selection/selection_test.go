package selection

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"fedfteds/internal/data"
	"fedfteds/internal/models"
	"fedfteds/internal/tensor"
)

// testModel returns a small MLP over 8 features with 4 classes.
func testModel(t *testing.T) *models.Model {
	t.Helper()
	m, err := models.Build(models.Spec{
		Arch:       models.ArchMLP,
		InputShape: []int{8},
		NumClasses: 4,
		Hidden:     16,
		InitSeed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testDataset(t *testing.T, n int) *data.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(n, 8)
	x.FillNormal(rng, 0, 1)
	y := make([]int, n)
	for i := range y {
		y[i] = i % 4
	}
	ds, err := data.NewDataset(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAllSelectsEverything(t *testing.T) {
	ds := testDataset(t, 17)
	idx, err := All{}.Select(nil, ds, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 17 {
		t.Fatalf("All selected %d of 17", len(idx))
	}
}

func TestRandomSelectsFraction(t *testing.T) {
	ds := testDataset(t, 100)
	rng := rand.New(rand.NewSource(3))
	idx, err := Random{}.Select(nil, ds, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 10 {
		t.Fatalf("Random selected %d, want 10", len(idx))
	}
	if !sort.IntsAreSorted(idx) {
		t.Fatal("indices not sorted")
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatal("duplicate index")
		}
		seen[i] = true
	}
}

func TestRandomDiffersAcrossRounds(t *testing.T) {
	ds := testDataset(t, 100)
	rng := rand.New(rand.NewSource(4))
	a, err := Random{}.Select(nil, ds, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random{}.Select(nil, ds, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two draws were identical; selection is not re-randomized per round")
	}
}

func TestFractionValidation(t *testing.T) {
	ds := testDataset(t, 10)
	rng := rand.New(rand.NewSource(5))
	for _, frac := range []float64{0, -0.5, 1.5} {
		if _, err := (Random{}).Select(nil, ds, frac, rng); !errors.Is(err, ErrSelection) {
			t.Fatalf("fraction %v: expected ErrSelection, got %v", frac, err)
		}
	}
	// Tiny fraction still selects at least one sample.
	idx, err := Random{}.Select(nil, ds, 0.001, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 {
		t.Fatalf("tiny fraction selected %d, want 1", len(idx))
	}
}

func TestEntropySelectsHighestEntropy(t *testing.T) {
	m := testModel(t)
	ds := testDataset(t, 40)
	e := Entropy{Temperature: 0.5}
	idx, err := e.Select(m, ds, 0.25, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 10 {
		t.Fatalf("selected %d, want 10", len(idx))
	}
	scores, err := SampleEntropies(m, ds, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Every selected sample must have entropy >= every unselected sample.
	sel := map[int]bool{}
	for _, i := range idx {
		sel[i] = true
	}
	minSel := math.Inf(1)
	for _, i := range idx {
		if scores[i] < minSel {
			minSel = scores[i]
		}
	}
	for i, s := range scores {
		if !sel[i] && s > minSel+1e-12 {
			t.Fatalf("unselected sample %d has entropy %v > min selected %v", i, s, minSel)
		}
	}
}

func TestEntropyTemperatureValidation(t *testing.T) {
	m := testModel(t)
	ds := testDataset(t, 10)
	if _, err := (Entropy{Temperature: 0}).Select(m, ds, 0.5, nil); !errors.Is(err, ErrSelection) {
		t.Fatalf("expected ErrSelection, got %v", err)
	}
	if _, err := SampleEntropies(m, ds, -1); !errors.Is(err, ErrSelection) {
		t.Fatalf("expected ErrSelection, got %v", err)
	}
}

func TestEntropiesBounded(t *testing.T) {
	m := testModel(t)
	ds := testDataset(t, 30)
	for _, temp := range []float64{0.01, 0.1, 1.0, 10.0} {
		scores, err := SampleEntropies(m, ds, temp)
		if err != nil {
			t.Fatal(err)
		}
		maxH := math.Log(4)
		for i, h := range scores {
			if h < -1e-9 || h > maxH+1e-6 {
				t.Fatalf("temp %v: sample %d entropy %v outside [0, log4]", temp, i, h)
			}
		}
	}
}

func TestHardenedSoftmaxSharpensSelection(t *testing.T) {
	// The paper's Fig. 1 claim: lowering ρ concentrates the entropy
	// distribution near zero, leaving a thin high-entropy tail. Check that
	// the median entropy (normalized) drops as ρ decreases.
	m := testModel(t)
	ds := testDataset(t, 200)
	median := func(temp float64) float64 {
		scores, err := SampleEntropies(m, ds, temp)
		if err != nil {
			t.Fatal(err)
		}
		s := append([]float64(nil), scores...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	m10, m05, m01 := median(1.0), median(0.5), median(0.1)
	if !(m01 < m05 && m05 < m10) {
		t.Fatalf("median entropy not decreasing with temperature: ρ=1.0:%v ρ=0.5:%v ρ=0.1:%v", m10, m05, m01)
	}
}

func TestMarginAndLeastConfidenceSelect(t *testing.T) {
	m := testModel(t)
	ds := testDataset(t, 50)
	rng := rand.New(rand.NewSource(7))
	for _, sel := range []Selector{Margin{}, LeastConfidence{}} {
		idx, err := sel.Select(m, ds, 0.2, rng)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if len(idx) != 10 {
			t.Fatalf("%s selected %d, want 10", sel.Name(), len(idx))
		}
		if sel.ScoringPasses() != 1 {
			t.Fatalf("%s reports %d scoring passes", sel.Name(), sel.ScoringPasses())
		}
	}
}

func TestBatchEntropySelectsWholeBatches(t *testing.T) {
	m := testModel(t)
	ds := testDataset(t, 64)
	be := BatchEntropy{Temperature: 0.5, BatchSize: 8}
	idx, err := be.Select(m, ds, 0.25, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 16 {
		t.Fatalf("selected %d, want 16", len(idx))
	}
}

func TestBatchEntropyValidation(t *testing.T) {
	m := testModel(t)
	ds := testDataset(t, 10)
	if _, err := (BatchEntropy{Temperature: -1}).Select(m, ds, 0.5, rand.New(rand.NewSource(1))); !errors.Is(err, ErrSelection) {
		t.Fatalf("expected ErrSelection, got %v", err)
	}
}

func TestSelectorNames(t *testing.T) {
	names := map[string]Selector{
		"all":       All{},
		"rds":       Random{},
		"eds":       Entropy{Temperature: 0.1},
		"margin":    Margin{},
		"leastconf": LeastConfidence{},
		"batch-eds": BatchEntropy{Temperature: 0.1},
	}
	for want, sel := range names {
		if got := sel.Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}

func TestTopKByScoreStableTies(t *testing.T) {
	scores := []float64{1, 3, 3, 2}
	got := topKByScore(scores, 2)
	// Ties broken by lower index: picks 1 and 2.
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("topK = %v, want [1 2]", got)
	}
}
