package ckpt

import (
	"errors"
	"testing"
)

// FuzzUnmarshal drives arbitrary bytes through the container parser: it must
// either decode cleanly or fail with an error wrapping ErrCorrupt — never
// panic, never return sections alongside an error. The seed corpus runs on
// every plain `go test`, so CI exercises the parser's hostile-input paths
// even without a fuzzing phase.
func FuzzUnmarshal(f *testing.F) {
	valid, err := Marshal(testSections())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:len(valid)-5])
	truncatedHeader := append([]byte(nil), valid[:18]...)
	f.Add(truncatedHeader)
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0xFF // version field
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := Unmarshal(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed error: %v", err)
			}
			if sections != nil {
				t.Fatal("sections returned alongside an error")
			}
			return
		}
		// A successful parse must re-marshal to an equally parseable file.
		blob, err := Marshal(sections)
		if err != nil {
			t.Fatalf("re-marshal of valid sections failed: %v", err)
		}
		if _, err := Unmarshal(blob); err != nil {
			t.Fatalf("re-marshaled container unreadable: %v", err)
		}
	})
}
