package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"fedfteds/internal/tensor"
)

// Encoder builds a section body from typed primitives. All encodings are
// fixed-width little endian and fully deterministic: maps are emitted in
// sorted key order, floats as their exact IEEE-754 bits (NaN payloads
// included), so identical state always produces identical bytes.
type Encoder struct {
	buf bytes.Buffer
}

// Bytes returns the encoded body.
func (e *Encoder) Bytes() []byte { return e.buf.Bytes() }

// PutUint64 appends v.
func (e *Encoder) PutUint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

// PutInt64 appends v.
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutInt appends v as a 64-bit integer.
func (e *Encoder) PutInt(v int) { e.PutInt64(int64(v)) }

// PutFloat64 appends v's exact IEEE-754 bit pattern.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutBool appends v as one byte.
func (e *Encoder) PutBool(v bool) {
	var b byte
	if v {
		b = 1
	}
	e.buf.WriteByte(b)
}

// PutString appends a length-prefixed string.
func (e *Encoder) PutString(s string) {
	e.PutUint64(uint64(len(s)))
	e.buf.WriteString(s)
}

// PutBytes appends a length-prefixed byte slice.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUint64(uint64(len(b)))
	e.buf.Write(b)
}

// PutTensor appends one tensor in the library wire format (rank, dims, data).
func (e *Encoder) PutTensor(t *tensor.Tensor) error {
	if t == nil {
		return fmt.Errorf("ckpt: encode nil tensor")
	}
	_, err := t.WriteTo(&e.buf)
	return err
}

// PutTensors appends a count-prefixed tensor list.
func (e *Encoder) PutTensors(ts []*tensor.Tensor) error {
	e.PutUint64(uint64(len(ts)))
	for i, t := range ts {
		if err := e.PutTensor(t); err != nil {
			return fmt.Errorf("ckpt: tensor %d: %w", i, err)
		}
	}
	return nil
}

// PutFloat64Map appends an int→float64 map in ascending key order.
func (e *Encoder) PutFloat64Map(m map[int]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	e.PutUint64(uint64(len(keys)))
	for _, k := range keys {
		e.PutInt(k)
		e.PutFloat64(m[k])
	}
}

// Decoder reads a section body written by Encoder. Errors are sticky: after
// the first failure every getter returns a zero value, and Err (or Done)
// reports the failure, which always wraps ErrCorrupt.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder starts decoding a section body.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// fail records the first error, wrapping ErrCorrupt.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// take returns the next n bytes, or nil after recording a truncation error.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("truncated: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Done asserts the body was fully consumed and returns the first error.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		d.fail("%d trailing bytes", len(d.b)-d.off)
	}
	return d.err
}

// Uint64 reads one 64-bit unsigned integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads one 64-bit signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Int reads one integer.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Float64 reads one float64 bit pattern.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bool reads one byte as a bool; any value other than 0 or 1 is corruption.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte %d", b[0])
		return false
	}
}

// String reads one length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uint64()
	if n > uint64(len(d.b)) {
		d.fail("string length %d exceeds body", n)
		return ""
	}
	return string(d.take(int(n)))
}

// Bytes reads one length-prefixed byte slice (copied out of the body).
func (d *Decoder) Bytes() []byte {
	n := d.Uint64()
	if n > uint64(len(d.b)) {
		d.fail("bytes length %d exceeds body", n)
		return nil
	}
	return append([]byte(nil), d.take(int(n))...)
}

// Tensor reads one tensor in the library wire format.
func (d *Decoder) Tensor() *tensor.Tensor {
	if d.err != nil {
		return nil
	}
	r := bytes.NewReader(d.b[d.off:])
	var t tensor.Tensor
	n, err := t.ReadFrom(r)
	d.off += int(n)
	if err != nil {
		d.fail("tensor: %v", err)
		return nil
	}
	return &t
}

// Tensors reads a count-prefixed tensor list.
func (d *Decoder) Tensors() []*tensor.Tensor {
	n := d.Uint64()
	// A tensor is at least 1 byte on the wire; anything claiming more
	// tensors than remaining bytes is corrupt, not a huge allocation.
	if n > uint64(len(d.b)-d.off) {
		d.fail("tensor count %d exceeds body", n)
		return nil
	}
	out := make([]*tensor.Tensor, 0, n)
	for i := uint64(0); i < n; i++ {
		t := d.Tensor()
		if d.err != nil {
			return nil
		}
		out = append(out, t)
	}
	return out
}

// Float64Map reads an int→float64 map written by PutFloat64Map.
func (d *Decoder) Float64Map() map[int]float64 {
	n := d.Uint64()
	if n > uint64(len(d.b)-d.off)/16+1 {
		d.fail("map size %d exceeds body", n)
		return nil
	}
	m := make(map[int]float64, n)
	for i := uint64(0); i < n; i++ {
		k := d.Int()
		v := d.Float64()
		if d.err != nil {
			return nil
		}
		m[k] = v
	}
	return m
}
