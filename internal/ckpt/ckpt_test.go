package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fedfteds/internal/tensor"
)

// putCRC writes the container checksum of body into dst.
func putCRC(dst, body []byte) {
	binary.LittleEndian.PutUint32(dst, crc32.Checksum(body, crcTable))
}

// testSections returns a representative multi-section payload.
func testSections() []Section {
	return []Section{
		{Name: "meta", Body: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Name: "model", Body: bytes.Repeat([]byte{0xAB}, 300)},
		{Name: "empty", Body: nil},
		{Name: "history", Body: []byte("not really a history")},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	want := testSections()
	blob, err := Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d sections, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || !bytes.Equal(got[i].Body, want[i].Body) {
			t.Fatalf("section %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestMarshalDeterministic pins byte-identical output for identical input —
// the property the golden-checkpoint CI gate relies on.
func TestMarshalDeterministic(t *testing.T) {
	a, err := Marshal(testSections())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(testSections())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Marshal is not deterministic")
	}
}

// TestUnmarshalCorruption is the satellite corruption matrix: truncations at
// every boundary class, flipped bytes everywhere, wrong magic, wrong version
// and wrong checksum must all return an error wrapping ErrCorrupt — never
// panic, never partially load.
func TestUnmarshalCorruption(t *testing.T) {
	blob, err := Marshal(testSections())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		// Every prefix of a valid file is invalid: either structurally
		// truncated or failing the checksum.
		for n := 0; n < len(blob); n++ {
			if _, err := Unmarshal(blob[:n]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
			}
		}
	})

	t.Run("flipped byte", func(t *testing.T) {
		// A single flipped bit anywhere must be caught by the checksum (or
		// by the magic/structure checks that run before it).
		for i := 0; i < len(blob); i++ {
			bad := append([]byte(nil), blob...)
			bad[i] ^= 0x40
			if _, err := Unmarshal(bad); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at byte %d: got %v, want ErrCorrupt", i, err)
			}
		}
	})

	t.Run("wrong version", func(t *testing.T) {
		// A future version with a valid checksum must fail as ErrVersion
		// (which also satisfies ErrCorrupt).
		bad := append([]byte(nil), blob...)
		bad[len(magic)] = 99
		bad = reseal(bad)
		_, err := Unmarshal(bad)
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("ErrVersion must wrap ErrCorrupt, got %v", err)
		}
	})

	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		copy(bad, "NOTACKPT")
		bad = reseal(bad)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("oversized section length", func(t *testing.T) {
		// A resealed (checksum-valid) file whose section length overruns the
		// payload must still fail structurally.
		e := Section{Name: "x", Body: []byte{1, 2, 3}}
		good, err := Marshal([]Section{e})
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), good...)
		// The body-length field sits after header(16) + nameLen(2) + name(1).
		bad[19] = 0xFF
		bad = reseal(bad)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("empty", func(t *testing.T) {
		if _, err := Unmarshal(nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

// reseal rewrites a tampered blob's trailing CRC so it passes the checksum,
// exposing the structural validation underneath.
func reseal(b []byte) []byte {
	body := b[:len(b)-4]
	out := append([]byte(nil), body...)
	var crc [4]byte
	putCRC(crc[:], body)
	return append(out, crc[:]...)
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := Path(dir, 3)
	if err := Save(path, testSections()); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(testSections()) {
		t.Fatalf("got %d sections", len(got))
	}
	// No temporary files may survive a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory not clean after save: %v", entries)
	}
	// Overwriting the same round is atomic too.
	if err := Save(path, testSections()[:1]); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("overwrite not applied: %d sections", len(got))
	}
}

func TestLoadLatest(t *testing.T) {
	dir := t.TempDir()

	if _, _, err := LoadLatest(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := LoadLatest(filepath.Join(dir, "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: got %v, want ErrNoCheckpoint", err)
	}

	for _, round := range []int{1, 2, 10} {
		if err := Save(Path(dir, round), []Section{{Name: "meta", Body: []byte{byte(round)}}}); err != nil {
			t.Fatal(err)
		}
	}
	round, sections, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if round != 10 || sections[0].Body[0] != 10 {
		t.Fatalf("got round %d, want 10", round)
	}

	// A corrupt newest checkpoint falls back to the next valid one.
	if err := os.WriteFile(Path(dir, 11), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	round, _, err = LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if round != 10 {
		t.Fatalf("fallback past corrupt newest: got round %d, want 10", round)
	}

	// All corrupt: a joined error, not ErrNoCheckpoint.
	all := t.TempDir()
	if err := os.WriteFile(Path(all, 1), []byte("bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(all); err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt dir: got %v", err)
	}

	rounds, err := Rounds(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{1, 2, 10, 11}) {
		t.Fatalf("rounds %v", rounds)
	}

	// Only exactly-canonical names count: backups, unpadded or otherwise
	// non-round-trippable names must be ignored, not half-parsed.
	for _, name := range []string{
		"round-000000004.fedckpt.bak", // backup suffix
		"round-4.fedckpt",             // unpadded
		"round-00000004x.fedckpt",     // non-digit
		"round-0000000044.fedckpt",    // ten digits
		"notes.txt",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rounds, err = Rounds(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rounds, []int{1, 2, 10, 11}) {
		t.Fatalf("non-canonical names leaked into rounds: %v", rounds)
	}
}

// TestEncoderDecoderRoundTrip covers every primitive, including exact NaN
// and signed-zero float bit patterns.
func TestEncoderDecoderRoundTrip(t *testing.T) {
	ts := []*tensor.Tensor{
		tensor.MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3),
		tensor.New(4),
		tensor.MustFromSlice([]float32{-0.5}, 1, 1, 1),
	}
	m := map[int]float64{3: 1.5, 1: math.NaN(), 2: math.Inf(-1), -7: 0.1}

	var e Encoder
	e.PutInt(-42)
	e.PutUint64(1 << 63)
	e.PutFloat64(math.Copysign(0, -1))
	e.PutFloat64(math.NaN())
	e.PutBool(true)
	e.PutBool(false)
	e.PutString("héllo")
	e.PutBytes([]byte{9, 8, 7})
	if err := e.PutTensors(ts); err != nil {
		t.Fatal(err)
	}
	e.PutFloat64Map(m)

	d := NewDecoder(e.Bytes())
	if v := d.Int(); v != -42 {
		t.Fatalf("Int %d", v)
	}
	if v := d.Uint64(); v != 1<<63 {
		t.Fatalf("Uint64 %d", v)
	}
	if v := d.Float64(); math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("-0.0 bits lost: %v", v)
	}
	if v := d.Float64(); !math.IsNaN(v) {
		t.Fatalf("NaN lost: %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools differ")
	}
	if s := d.String(); s != "héllo" {
		t.Fatalf("String %q", s)
	}
	if b := d.Bytes(); !bytes.Equal(b, []byte{9, 8, 7}) {
		t.Fatalf("Bytes %v", b)
	}
	got := d.Tensors()
	if len(got) != len(ts) {
		t.Fatalf("got %d tensors", len(got))
	}
	for i := range ts {
		if !got[i].Equal(ts[i]) {
			t.Fatalf("tensor %d differs", i)
		}
	}
	gm := d.Float64Map()
	if len(gm) != len(m) {
		t.Fatalf("map size %d", len(gm))
	}
	for k, v := range m {
		if math.Float64bits(gm[k]) != math.Float64bits(v) {
			t.Fatalf("map[%d] = %v, want %v", k, gm[k], v)
		}
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderCorruption: every getter on truncated input reports ErrCorrupt
// and stays sticky.
func TestDecoderCorruption(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if v := d.Uint64(); v != 0 {
		t.Fatalf("truncated Uint64 returned %d", v)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err %v", d.Err())
	}
	// Sticky: further reads keep returning zero values.
	if d.Int() != 0 || d.String() != "" || d.Tensor() != nil {
		t.Fatal("decoder not sticky after error")
	}

	// Invalid bool byte.
	d = NewDecoder([]byte{7})
	d.Bool()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("bad bool: %v", d.Err())
	}

	// Huge claimed tensor count must not allocate.
	var e Encoder
	e.PutUint64(1 << 60)
	d = NewDecoder(e.Bytes())
	d.Tensors()
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("huge tensor count: %v", d.Err())
	}

	// Trailing bytes fail Done.
	d = NewDecoder([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1})
	d.Uint64()
	if err := d.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

// TestTensorRoundTripProperty is the satellite property test: random tensor
// sets with random shapes survive an encode/marshal/unmarshal/decode cycle
// bit for bit.
func TestTensorRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		ts := make([]*tensor.Tensor, n)
		for i := range ts {
			rank := 1 + rng.Intn(4)
			shape := make([]int, rank)
			for j := range shape {
				shape[j] = 1 + rng.Intn(5)
			}
			ts[i] = tensor.New(shape...)
			ts[i].FillNormal(rng, 0, 3)
		}
		var e Encoder
		if err := e.PutTensors(ts); err != nil {
			t.Fatal(err)
		}
		blob, err := Marshal([]Section{{Name: "model", Body: e.Bytes()}})
		if err != nil {
			t.Fatal(err)
		}
		sections, err := Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDecoder(sections[0].Body)
		got := d.Tensors()
		if err := d.Done(); err != nil {
			t.Fatal(err)
		}
		for i := range ts {
			if !got[i].Equal(ts[i]) {
				t.Fatalf("trial %d: tensor %d differs", trial, i)
			}
		}
	}
}
