// Package ckpt implements the checkpoint container used to make federated
// runs resumable: a versioned, checksummed binary section file plus atomic
// file helpers. The container carries named opaque sections; the run-state
// schema (which sections exist and what they hold) lives with the types that
// own the state (internal/core), encoded through this package's Encoder and
// Decoder primitives.
//
// File format (all integers little endian):
//
//	offset  size  field
//	0       8     magic "FEDCKPT\x00"
//	8       4     format version (currently 1)
//	12      4     section count
//	        per section:
//	          2   name length
//	          n   name (UTF-8)
//	          8   body length
//	          m   body
//	last    4     CRC-32 (Castagnoli) over every preceding byte
//
// Encoding is fully deterministic: the same sections in the same order
// produce the same bytes, so checkpoint files can be golden-tested
// byte-for-byte. Every decode failure mode — truncation, bit flips, a bad
// magic or checksum — surfaces as an error wrapping ErrCorrupt (version
// skew as ErrVersion); a corrupt file is never partially applied.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

var (
	// ErrCorrupt reports a checkpoint file that failed structural
	// validation: wrong magic, truncated data, or a checksum mismatch.
	// Loading never partially applies such a file.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")
	// ErrVersion reports a checkpoint written by an incompatible format
	// version. It wraps ErrCorrupt so a single errors.Is(err, ErrCorrupt)
	// covers every "do not trust this file" case.
	ErrVersion = fmt.Errorf("%w: unsupported format version", ErrCorrupt)
	// ErrNoCheckpoint reports that LoadLatest found no checkpoint files.
	ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")
)

const (
	// Version is the current container format version.
	Version = 1

	magic = "FEDCKPT\x00"
	// fileExt names checkpoint files; Path and LoadLatest agree on it.
	fileExt = ".fedckpt"
	// filePrefix is the per-round file stem.
	filePrefix = "round-"
	// maxSections and maxSectionBody bound decoding so a corrupt length
	// field cannot trigger an enormous allocation.
	maxSections    = 1 << 16
	maxSectionBody = 1 << 32
)

// crcTable is the Castagnoli polynomial table shared by encode and decode.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Section is one named payload inside a checkpoint file.
type Section struct {
	// Name identifies the section ("meta", "model", ...).
	Name string
	// Body is the section's opaque payload.
	Body []byte
}

// Marshal serializes sections into the container format, deterministically.
func Marshal(sections []Section) ([]byte, error) {
	size := len(magic) + 4 + 4 + 4 // header + trailing CRC
	for _, s := range sections {
		if len(s.Name) > 1<<16-1 {
			return nil, fmt.Errorf("ckpt: section name %q too long", s.Name[:32])
		}
		size += 2 + len(s.Name) + 8 + len(s.Body)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sections)))
	for _, s := range sections {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.Name)))
		buf = append(buf, s.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.Body)))
		buf = append(buf, s.Body...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
	return buf, nil
}

// Unmarshal parses and fully validates a container produced by Marshal. Any
// structural problem returns an error wrapping ErrCorrupt (ErrVersion for
// format-version skew); no partial result is ever returned.
func Unmarshal(b []byte) ([]Section, error) {
	headerLen := len(magic) + 4 + 4
	if len(b) < headerLen+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the minimal container", ErrCorrupt, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	// The checksum covers the version field, so verify it first: a flipped
	// bit in the version must read as corruption, not as a future version.
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[len(magic):]); v != Version {
		return nil, fmt.Errorf("%w %d (supported: %d)", ErrVersion, v, Version)
	}
	count := binary.LittleEndian.Uint32(b[len(magic)+4:])
	if count > maxSections {
		return nil, fmt.Errorf("%w: %d sections exceeds limit", ErrCorrupt, count)
	}
	off := headerLen
	sections := make([]Section, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(body)-off < 2 {
			return nil, fmt.Errorf("%w: truncated section header", ErrCorrupt)
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if len(body)-off < nameLen+8 {
			return nil, fmt.Errorf("%w: truncated section name", ErrCorrupt)
		}
		name := string(body[off : off+nameLen])
		off += nameLen
		bodyLen := binary.LittleEndian.Uint64(body[off:])
		off += 8
		if bodyLen > maxSectionBody || uint64(len(body)-off) < bodyLen {
			return nil, fmt.Errorf("%w: section %q body overruns file", ErrCorrupt, name)
		}
		sections = append(sections, Section{Name: name, Body: body[off : off+int(bodyLen)]})
		off += int(bodyLen)
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, len(body)-off)
	}
	return sections, nil
}

// Path returns the canonical checkpoint filename for a round within dir.
func Path(dir string, round int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%09d%s", filePrefix, round, fileExt))
}

// Save marshals sections and writes them to path atomically: the bytes land
// in a temporary file in the same directory first and are renamed into place,
// so a crash mid-write can never leave a truncated checkpoint under the
// final name.
func Save(path string, sections []Section) error {
	blob, err := Marshal(sections)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	// Flush file contents before the rename publishes the name: an atomic
	// rename of unsynced data could survive a crash as an empty file.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	return nil
}

// Load reads and validates the checkpoint at path.
func Load(path string) ([]Section, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: load: %w", err)
	}
	sections, err := Unmarshal(blob)
	if err != nil {
		return nil, fmt.Errorf("ckpt: load %s: %w", path, err)
	}
	return sections, nil
}

// parseRound extracts the round from a canonical checkpoint filename,
// strictly: exactly filePrefix + nine digits + fileExt, nothing else. The
// strictness matters — every accepted name must round-trip through Path, or
// LoadLatest would try to open files under names they do not have.
func parseRound(name string) (int, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileExt) {
		return 0, false
	}
	digits := name[len(filePrefix) : len(name)-len(fileExt)]
	if len(digits) != 9 {
		return 0, false
	}
	round := 0
	for _, c := range []byte(digits) {
		if c < '0' || c > '9' {
			return 0, false
		}
		round = 10*round + int(c-'0')
	}
	return round, true
}

// Rounds lists the rounds that have a checkpoint file in dir, ascending.
// Files not matching the canonical naming exactly (backups, hand-renamed
// copies) are ignored.
func Rounds(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var rounds []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if round, ok := parseRound(e.Name()); ok {
			rounds = append(rounds, round)
		}
	}
	sort.Ints(rounds)
	return rounds, nil
}

// LoadLatest loads the newest valid checkpoint in dir and returns its round.
// A corrupt newest file is skipped in favor of the next-newest valid one —
// a run is better resumed from round R−1 than restarted from zero — and the
// skipped files' errors are joined into the result on total failure. A
// missing or empty directory returns ErrNoCheckpoint.
func LoadLatest(dir string) (int, []Section, error) {
	rounds, err := Rounds(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	if err != nil {
		return 0, nil, err
	}
	if len(rounds) == 0 {
		return 0, nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	var errs []error
	for i := len(rounds) - 1; i >= 0; i-- {
		sections, err := Load(Path(dir, rounds[i]))
		if err == nil {
			return rounds[i], sections, nil
		}
		errs = append(errs, err)
	}
	return 0, nil, fmt.Errorf("ckpt: every checkpoint in %s is unreadable: %w", dir, errors.Join(errs...))
}
