// Package opt implements the optimizers used for local client updates:
// stochastic gradient descent with momentum and weight decay, plus the
// FedProx proximal term that penalizes drift from the global model.
package opt

import (
	"errors"
	"fmt"

	"fedfteds/internal/nn"
	"fedfteds/internal/tensor"
)

// ErrConfig reports an invalid optimizer configuration.
var ErrConfig = errors.New("opt: invalid configuration")

// SGDConfig configures an SGD optimizer. The paper trains clients with
// learning rate 0.1 and momentum 0.5.
type SGDConfig struct {
	// LR is the learning rate; must be positive.
	LR float64
	// Momentum in [0, 1).
	Momentum float64
	// WeightDecay is the L2 coefficient applied to parameters that are not
	// marked NoDecay.
	WeightDecay float64
	// Nesterov enables Nesterov momentum.
	Nesterov bool
	// ProxMu is the FedProx proximal coefficient μ; when positive, Step adds
	// μ(w - w_global) to each gradient. The anchor is set with SetProxAnchor.
	ProxMu float64
}

// SGD updates a fixed set of parameters in place. It owns one velocity
// buffer per parameter. Not safe for concurrent use.
type SGD struct {
	cfg      SGDConfig
	params   []*nn.Param
	velocity []*tensor.Tensor
	anchor   []*tensor.Tensor // FedProx global-model anchor, parallel to params
	// anchorBuf holds SnapshotProxAnchor's reusable storage across Resets.
	anchorBuf []*tensor.Tensor
}

// NewSGD constructs an optimizer over params.
func NewSGD(cfg SGDConfig, params []*nn.Param) (*SGD, error) {
	if cfg.LR <= 0 {
		return nil, fmt.Errorf("%w: LR %v must be positive", ErrConfig, cfg.LR)
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		return nil, fmt.Errorf("%w: momentum %v outside [0,1)", ErrConfig, cfg.Momentum)
	}
	if cfg.WeightDecay < 0 {
		return nil, fmt.Errorf("%w: weight decay %v negative", ErrConfig, cfg.WeightDecay)
	}
	if cfg.ProxMu < 0 {
		return nil, fmt.Errorf("%w: proximal mu %v negative", ErrConfig, cfg.ProxMu)
	}
	vel := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		vel[i] = tensor.New(p.W.Shape()...)
	}
	return &SGD{cfg: cfg, params: params, velocity: vel}, nil
}

// SetProxAnchor records the global-model snapshot w_global used by the
// FedProx proximal term. The tensors are cloned. Anchors must match the
// optimizer's parameters element for element.
func (s *SGD) SetProxAnchor(anchor []*tensor.Tensor) error {
	if len(anchor) != len(s.params) {
		return fmt.Errorf("%w: %d anchors for %d params", ErrConfig, len(anchor), len(s.params))
	}
	s.anchor = make([]*tensor.Tensor, len(anchor))
	for i, a := range anchor {
		if !a.SameShape(s.params[i].W) {
			return fmt.Errorf("%w: anchor %d shape %v vs param %v", ErrConfig, i, a.Shape(), s.params[i].W.Shape())
		}
		s.anchor[i] = a.Clone()
	}
	return nil
}

// SnapshotProxAnchor records the optimizer's current parameter values as the
// proximal anchor, reusing previously allocated anchor storage. It is the
// allocation-free equivalent of SetProxAnchor(clones of current weights) used
// by the pooled client-replica engine.
func (s *SGD) SnapshotProxAnchor() {
	if s.anchorBuf == nil {
		s.anchorBuf = make([]*tensor.Tensor, len(s.params))
	}
	for i, p := range s.params {
		s.anchorBuf[i] = tensor.Ensure(s.anchorBuf[i], p.W.Shape()...)
		if err := s.anchorBuf[i].CopyFrom(p.W); err != nil {
			panic(err) // shapes come from the params themselves
		}
	}
	s.anchor = s.anchorBuf
}

// Reset zeroes the momentum buffers and drops any proximal anchor, returning
// the optimizer to its just-constructed state. A pooled client replica calls
// this between local rounds so optimizer reuse stays bit-identical to
// constructing a fresh SGD.
func (s *SGD) Reset() {
	for _, v := range s.velocity {
		v.Zero()
	}
	s.anchor = nil
}

// Step applies one update to every parameter from its accumulated gradient,
// then zeroes the gradients.
func (s *SGD) Step() {
	lr := float32(s.cfg.LR)
	mom := float32(s.cfg.Momentum)
	wd := float32(s.cfg.WeightDecay)
	mu := float32(s.cfg.ProxMu)
	for i, p := range s.params {
		g := p.G
		if wd > 0 && !p.NoDecay {
			if err := g.Axpy(wd, p.W); err != nil {
				panic(err)
			}
		}
		if mu > 0 && s.anchor != nil {
			// g += μ (w - w_global)
			gd, wv, av := g.Data(), p.W.Data(), s.anchor[i].Data()
			for j := range gd {
				gd[j] += mu * (wv[j] - av[j])
			}
		}
		v := s.velocity[i]
		if mom > 0 {
			// v = mom*v + g
			vd, gd := v.Data(), g.Data()
			for j := range vd {
				vd[j] = mom*vd[j] + gd[j]
			}
			if s.cfg.Nesterov {
				// w -= lr * (g + mom*v)
				wv := p.W.Data()
				for j := range wv {
					wv[j] -= lr * (gd[j] + mom*vd[j])
				}
			} else {
				if err := p.W.Axpy(-lr, v); err != nil {
					panic(err)
				}
			}
		} else {
			if err := p.W.Axpy(-lr, g); err != nil {
				panic(err)
			}
		}
		g.Zero()
	}
}

// StateTensors returns the optimizer's live auxiliary state: every velocity
// buffer, followed by the proximal anchor tensors when an anchor is set. The
// returned tensors are the live ones (callers clone for snapshots). This is
// what a checkpoint must carry to resume an optimizer mid-stream — note that
// both federated engines in this repo reset client optimizers at every round
// boundary (see SGD.Reset), so round-boundary checkpoints have no live
// optimizer state to save; the accessor exists for callers that checkpoint
// inside a local round (e.g. centralized pretraining extensions).
func (s *SGD) StateTensors() []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, len(s.velocity)+len(s.anchor))
	out = append(out, s.velocity...)
	out = append(out, s.anchor...)
	return out
}

// RestoreStateTensors copies a StateTensors snapshot back into the optimizer:
// len(params) tensors restore velocity only (and drop any anchor, matching a
// Reset-then-trained state), 2·len(params) restore velocity and the proximal
// anchor. Shapes must match the optimizer's parameters element for element;
// every shape is validated before anything is applied, so a rejected restore
// leaves the optimizer exactly as it was.
func (s *SGD) RestoreStateTensors(ts []*tensor.Tensor) error {
	n := len(s.params)
	if len(ts) != n && len(ts) != 2*n {
		return fmt.Errorf("%w: %d state tensors for %d params (want %d or %d)",
			ErrConfig, len(ts), n, n, 2*n)
	}
	for i, p := range s.params {
		if !ts[i].SameShape(p.W) {
			return fmt.Errorf("%w: velocity %d shape %v vs param %v",
				ErrConfig, i, ts[i].Shape(), p.W.Shape())
		}
		if len(ts) == 2*n && !ts[n+i].SameShape(p.W) {
			return fmt.Errorf("%w: anchor %d shape %v vs param %v",
				ErrConfig, i, ts[n+i].Shape(), p.W.Shape())
		}
	}
	for i, v := range s.velocity {
		if err := v.CopyFrom(ts[i]); err != nil {
			return fmt.Errorf("%w: velocity %d: %v", ErrConfig, i, err)
		}
	}
	if len(ts) == n {
		s.anchor = nil
		return nil
	}
	anchor := make([]*tensor.Tensor, n)
	for i := 0; i < n; i++ {
		anchor[i] = ts[n+i].Clone()
	}
	s.anchor = anchor
	return nil
}

// SetLR replaces the learning rate, e.g. from a schedule.
func (s *SGD) SetLR(lr float64) error {
	if lr <= 0 {
		return fmt.Errorf("%w: LR %v must be positive", ErrConfig, lr)
	}
	s.cfg.LR = lr
	return nil
}

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.cfg.LR }
