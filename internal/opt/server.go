package opt

import (
	"fmt"
	"math"

	"fedfteds/internal/tensor"
)

// ServerOpt is the server side of a federated-optimization strategy: once a
// round's client updates have been fused into their weighted average, the
// server optimizer decides how that average moves the global model. The
// classical FedAvg server simply overwrites the global state with the
// average; the FedOpt family (Reddi et al., "Adaptive Federated
// Optimization") instead treats the pseudo-gradient
//
//	g = w_global − avg
//
// as a stochastic gradient of the global objective and feeds it to a
// first-order optimizer — momentum (FedAvgM), Adam (FedAdam) or Yogi
// (FedYogi). Applying plain SGD with learning rate 1 to g recovers the
// overwrite exactly, which is why Overwrite is the degenerate member of the
// family.
//
// Implementations size their auxiliary state lazily on first Apply (the
// optimizer is constructed before the model's tensor shapes are known) and
// keep it across rounds; Apply is deterministic and allocation-free in
// steady state. Not safe for concurrent use.
type ServerOpt interface {
	// Name returns the optimizer's short identifier ("overwrite",
	// "momentum", "adam", "yogi").
	Name() string
	// Params renders the configuration canonically ("lr=0.1,beta1=0.9");
	// strategy fingerprints embed it so a checkpoint written under one
	// setting is never resumed under another.
	Params() string
	// Apply folds the weighted client average into the global tensors in
	// place. global and avg are parallel and must match shape for shape.
	Apply(global, avg []*tensor.Tensor) error
	// StateTensors returns the live auxiliary state in canonical order
	// (empty before the first Apply of a fresh optimizer). Callers clone
	// for snapshots.
	StateTensors() []*tensor.Tensor
	// RestoreStateTensors replaces the auxiliary state from a StateTensors
	// snapshot. A restore before the first Apply (the checkpoint warm-start
	// path) is validated against the model shapes at that first Apply.
	RestoreStateTensors(ts []*tensor.Tensor) error
}

// checkAggregate validates the global/average tensor pairing shared by every
// server optimizer.
func checkAggregate(global, avg []*tensor.Tensor) error {
	if len(global) == 0 {
		return fmt.Errorf("%w: server optimizer applied to no tensors", ErrConfig)
	}
	if len(global) != len(avg) {
		return fmt.Errorf("%w: %d aggregate tensors for %d global tensors", ErrConfig, len(avg), len(global))
	}
	for i := range global {
		if !global[i].SameShape(avg[i]) {
			return fmt.Errorf("%w: aggregate tensor %d shape %v vs global %v",
				ErrConfig, i, avg[i].Shape(), global[i].Shape())
		}
	}
	return nil
}

// serverState manages the lazily sized per-parameter auxiliary buffers
// (slots buffers per global tensor) plus the restore-before-sized case.
type serverState struct {
	slots int
	live  []*tensor.Tensor // slots*len(global) tensors, slot-major
	// restored holds a RestoreStateTensors snapshot taken before the state
	// was sized; it is validated and adopted at the next Apply.
	restored []*tensor.Tensor
}

// bind returns the state buffers for the given global tensors, allocating
// zeros on first use or adopting a pending restore.
func (s *serverState) bind(global []*tensor.Tensor) ([]*tensor.Tensor, error) {
	want := s.slots * len(global)
	if s.restored != nil {
		if err := s.validateAgainst(s.restored, global); err != nil {
			return nil, err
		}
		s.live, s.restored = s.restored, nil
		return s.live, nil
	}
	if s.live == nil {
		s.live = make([]*tensor.Tensor, 0, want)
		for slot := 0; slot < s.slots; slot++ {
			for _, g := range global {
				s.live = append(s.live, tensor.New(g.Shape()...))
			}
		}
		return s.live, nil
	}
	if err := s.validateAgainst(s.live, global); err != nil {
		return nil, err
	}
	return s.live, nil
}

// validateAgainst checks a candidate state tensor list against the model.
func (s *serverState) validateAgainst(ts, global []*tensor.Tensor) error {
	want := s.slots * len(global)
	if len(ts) != want {
		return fmt.Errorf("%w: %d server-optimizer state tensors for %d global tensors (want %d)",
			ErrConfig, len(ts), len(global), want)
	}
	for slot := 0; slot < s.slots; slot++ {
		for i, g := range global {
			if !ts[slot*len(global)+i].SameShape(g) {
				return fmt.Errorf("%w: server-optimizer state tensor %d shape %v vs global %v",
					ErrConfig, slot*len(global)+i, ts[slot*len(global)+i].Shape(), g.Shape())
			}
		}
	}
	return nil
}

// state returns the live (or pending-restored) tensors for snapshots.
func (s *serverState) state() []*tensor.Tensor {
	if s.live != nil {
		return s.live
	}
	return s.restored
}

// restore installs a snapshot: into the live buffers when already sized,
// or as a pending adoption validated at the next bind. An empty snapshot
// (a checkpoint taken before the optimizer's first apply) resets the state
// to fresh — the next bind starts from zero moments again.
func (s *serverState) restore(ts []*tensor.Tensor) error {
	if len(ts) == 0 {
		s.live, s.restored = nil, nil
		return nil
	}
	if len(ts)%s.slots != 0 {
		return fmt.Errorf("%w: %d server-optimizer state tensors are not a multiple of %d slots",
			ErrConfig, len(ts), s.slots)
	}
	clone := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		clone[i] = t.Clone()
	}
	if s.live != nil {
		if len(clone) != len(s.live) {
			return fmt.Errorf("%w: %d server-optimizer state tensors, optimizer holds %d",
				ErrConfig, len(clone), len(s.live))
		}
		for i := range clone {
			if !clone[i].SameShape(s.live[i]) {
				return fmt.Errorf("%w: server-optimizer state tensor %d shape %v vs %v",
					ErrConfig, i, clone[i].Shape(), s.live[i].Shape())
			}
		}
		s.live = clone
		return nil
	}
	s.restored = clone
	return nil
}

// Overwrite is the classical FedAvg server: the global state becomes the
// weighted client average. It is stateless, and the engine's strategy layer
// is pinned bit-identical to the pre-strategy aggregation through it.
type Overwrite struct{}

var _ ServerOpt = Overwrite{}

// Name implements ServerOpt.
func (Overwrite) Name() string { return "overwrite" }

// Params implements ServerOpt.
func (Overwrite) Params() string { return "" }

// Apply implements ServerOpt: global ← avg.
func (Overwrite) Apply(global, avg []*tensor.Tensor) error {
	if err := checkAggregate(global, avg); err != nil {
		return err
	}
	for i := range global {
		if err := global[i].CopyFrom(avg[i]); err != nil {
			return fmt.Errorf("%w: overwrite tensor %d: %v", ErrConfig, i, err)
		}
	}
	return nil
}

// StateTensors implements ServerOpt (no state).
func (Overwrite) StateTensors() []*tensor.Tensor { return nil }

// RestoreStateTensors implements ServerOpt: only the empty snapshot is valid.
func (Overwrite) RestoreStateTensors(ts []*tensor.Tensor) error {
	if len(ts) != 0 {
		return fmt.Errorf("%w: %d state tensors for the stateless overwrite optimizer", ErrConfig, len(ts))
	}
	return nil
}

// ServerMomentum is FedAvgM: heavy-ball momentum over the pseudo-gradient,
//
//	v ← β·v + g,  w ← w − lr·v
//
// with v starting at zero. lr = 1, β = 0 degenerates to Overwrite.
type ServerMomentum struct {
	lr, beta float64
	st       serverState
}

var _ ServerOpt = (*ServerMomentum)(nil)

// NewServerMomentum validates and constructs a FedAvgM server optimizer.
func NewServerMomentum(lr, beta float64) (*ServerMomentum, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("%w: server LR %v must be positive", ErrConfig, lr)
	}
	if beta < 0 || beta >= 1 {
		return nil, fmt.Errorf("%w: server momentum %v outside [0,1)", ErrConfig, beta)
	}
	return &ServerMomentum{lr: lr, beta: beta, st: serverState{slots: 1}}, nil
}

// Name implements ServerOpt.
func (o *ServerMomentum) Name() string { return "momentum" }

// Params implements ServerOpt.
func (o *ServerMomentum) Params() string { return fmt.Sprintf("lr=%g,beta1=%g", o.lr, o.beta) }

// Apply implements ServerOpt.
func (o *ServerMomentum) Apply(global, avg []*tensor.Tensor) error {
	if err := checkAggregate(global, avg); err != nil {
		return err
	}
	vel, err := o.st.bind(global)
	if err != nil {
		return err
	}
	lr, beta := float32(o.lr), float32(o.beta)
	for i := range global {
		wd, ad, vd := global[i].Data(), avg[i].Data(), vel[i].Data()
		for j := range wd {
			g := wd[j] - ad[j]
			vd[j] = beta*vd[j] + g
			wd[j] -= lr * vd[j]
		}
	}
	return nil
}

// StateTensors implements ServerOpt: the velocity buffers.
func (o *ServerMomentum) StateTensors() []*tensor.Tensor { return o.st.state() }

// RestoreStateTensors implements ServerOpt.
func (o *ServerMomentum) RestoreStateTensors(ts []*tensor.Tensor) error { return o.st.restore(ts) }

// ServerAdam is FedAdam (and, with Yogi set, FedYogi): adaptive moments over
// the pseudo-gradient,
//
//	m ← β₁·m + (1−β₁)·g
//	v ← β₂·v + (1−β₂)·g²            (Adam)
//	v ← v − (1−β₂)·g²·sign(v − g²)  (Yogi)
//	w ← w − lr·m / (√v + τ)
//
// without bias correction, following the FedOpt reference formulation. τ is
// the adaptivity floor; larger τ makes the update less adaptive.
type ServerAdam struct {
	lr, beta1, beta2, tau float64
	yogi                  bool
	st                    serverState
}

var _ ServerOpt = (*ServerAdam)(nil)

// NewServerAdam validates and constructs a FedAdam (yogi=false) or FedYogi
// (yogi=true) server optimizer.
func NewServerAdam(lr, beta1, beta2, tau float64, yogi bool) (*ServerAdam, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("%w: server LR %v must be positive", ErrConfig, lr)
	}
	if beta1 < 0 || beta1 >= 1 {
		return nil, fmt.Errorf("%w: server beta1 %v outside [0,1)", ErrConfig, beta1)
	}
	if beta2 < 0 || beta2 >= 1 {
		return nil, fmt.Errorf("%w: server beta2 %v outside [0,1)", ErrConfig, beta2)
	}
	if tau <= 0 {
		return nil, fmt.Errorf("%w: server tau %v must be positive", ErrConfig, tau)
	}
	return &ServerAdam{lr: lr, beta1: beta1, beta2: beta2, tau: tau, yogi: yogi, st: serverState{slots: 2}}, nil
}

// Name implements ServerOpt.
func (o *ServerAdam) Name() string {
	if o.yogi {
		return "yogi"
	}
	return "adam"
}

// Params implements ServerOpt.
func (o *ServerAdam) Params() string {
	return fmt.Sprintf("lr=%g,beta1=%g,beta2=%g,tau=%g", o.lr, o.beta1, o.beta2, o.tau)
}

// Apply implements ServerOpt.
func (o *ServerAdam) Apply(global, avg []*tensor.Tensor) error {
	if err := checkAggregate(global, avg); err != nil {
		return err
	}
	st, err := o.st.bind(global)
	if err != nil {
		return err
	}
	n := len(global)
	lr, b1, b2, tau := float32(o.lr), float32(o.beta1), float32(o.beta2), float32(o.tau)
	for i := range global {
		wd, ad := global[i].Data(), avg[i].Data()
		md, vd := st[i].Data(), st[n+i].Data()
		for j := range wd {
			g := wd[j] - ad[j]
			md[j] = b1*md[j] + (1-b1)*g
			g2 := g * g
			if o.yogi {
				vd[j] -= (1 - b2) * g2 * sign32(vd[j]-g2)
			} else {
				vd[j] = b2*vd[j] + (1-b2)*g2
			}
			wd[j] -= lr * md[j] / (sqrt32(vd[j]) + tau)
		}
	}
	return nil
}

// StateTensors implements ServerOpt: first moments, then second moments.
func (o *ServerAdam) StateTensors() []*tensor.Tensor { return o.st.state() }

// RestoreStateTensors implements ServerOpt.
func (o *ServerAdam) RestoreStateTensors(ts []*tensor.Tensor) error { return o.st.restore(ts) }

// sqrt32 is float32 square root (element loop helper).
func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// sign32 returns the sign of x in {-1, 0, +1}.
func sign32(x float32) float32 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}
