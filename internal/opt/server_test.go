package opt

import (
	"errors"
	"math/rand"
	"testing"

	"fedfteds/internal/tensor"
)

func serverTestState(t *testing.T) (global, avg []*tensor.Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	shapes := [][]int{{4}, {2, 3}, {5}}
	for _, sh := range shapes {
		g := tensor.New(sh...)
		g.FillNormal(rng, 0, 1)
		a := tensor.New(sh...)
		a.FillNormal(rng, 0, 1)
		global = append(global, g)
		avg = append(avg, a)
	}
	return global, avg
}

func TestServerOptConstructorsValidate(t *testing.T) {
	cases := []func() error{
		func() error { _, err := NewServerMomentum(0, 0.9); return err },
		func() error { _, err := NewServerMomentum(1, 1); return err },
		func() error { _, err := NewServerMomentum(1, -0.1); return err },
		func() error { _, err := NewServerAdam(0, 0.9, 0.99, 1e-3, false); return err },
		func() error { _, err := NewServerAdam(0.1, 1, 0.99, 1e-3, false); return err },
		func() error { _, err := NewServerAdam(0.1, 0.9, -1, 1e-3, true); return err },
		func() error { _, err := NewServerAdam(0.1, 0.9, 0.99, 0, true); return err },
	}
	for i, c := range cases {
		if err := c(); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d: got %v, want ErrConfig", i, err)
		}
	}
}

func TestOverwriteApply(t *testing.T) {
	global, avg := serverTestState(t)
	var o Overwrite
	if err := o.Apply(global, avg); err != nil {
		t.Fatal(err)
	}
	for i := range global {
		if !global[i].Equal(avg[i]) {
			t.Fatalf("tensor %d not overwritten", i)
		}
	}
	if got := o.StateTensors(); len(got) != 0 {
		t.Fatalf("overwrite carries %d state tensors", len(got))
	}
	if err := o.RestoreStateTensors(avg); err == nil {
		t.Fatal("overwrite accepted state tensors")
	}
	if err := o.Apply(global, avg[:1]); err == nil {
		t.Fatal("mismatched tensor count accepted")
	}
}

// TestServerStateShapeMismatch pins the refusals: a restore whose shapes
// cannot belong to the model is rejected at the next Apply, and an
// aggregate with drifted shapes never touches the state.
func TestServerStateShapeMismatch(t *testing.T) {
	global, avg := serverTestState(t)
	o, err := NewServerAdam(0.1, 0.9, 0.99, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	// Restore-before-sized with the wrong tensor count: caught at Apply.
	bad := []*tensor.Tensor{tensor.New(4), tensor.New(4)}
	if err := o.RestoreStateTensors(bad); err != nil {
		t.Fatal(err) // count is a multiple of the slots, accepted provisionally
	}
	if err := o.Apply(global, avg); !errors.Is(err, ErrConfig) {
		t.Fatalf("wrong-count pending restore applied: %v", err)
	}

	fresh, err := NewServerAdam(0.1, 0.9, 0.99, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Apply(global, avg); err != nil {
		t.Fatal(err)
	}
	// A live optimizer refuses a wrong-shape restore outright.
	if err := fresh.RestoreStateTensors(bad); !errors.Is(err, ErrConfig) {
		t.Fatalf("wrong-count restore into live optimizer: %v", err)
	}
	// And refuses aggregates whose shapes drifted.
	if err := fresh.Apply(global[:2], avg[:2]); !errors.Is(err, ErrConfig) {
		t.Fatalf("drifted aggregate accepted: %v", err)
	}
}

// TestServerStateEmptyRestoreResets: restoring an empty snapshot (a
// checkpoint taken before the optimizer's first apply) resets a stateful
// optimizer to fresh instead of poisoning its next Apply.
func TestServerStateEmptyRestoreResets(t *testing.T) {
	global, avg := serverTestState(t)
	o, err := NewServerAdam(0.1, 0.9, 0.99, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh optimizer, empty restore: the next Apply starts from zeros.
	if err := o.RestoreStateTensors(nil); err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(global, avg); err != nil {
		t.Fatalf("apply after empty restore into a fresh optimizer: %v", err)
	}
	// Live optimizer, empty restore: moments drop back to fresh, matching a
	// never-applied twin bit for bit.
	if err := o.RestoreStateTensors(nil); err != nil {
		t.Fatal(err)
	}
	twin, err := NewServerAdam(0.1, 0.9, 0.99, 1e-3, false)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := make([]*tensor.Tensor, len(global)), make([]*tensor.Tensor, len(global))
	for i := range global {
		ga[i], gb[i] = global[i].Clone(), global[i].Clone()
	}
	if err := o.Apply(ga, avg); err != nil {
		t.Fatal(err)
	}
	if err := twin.Apply(gb, avg); err != nil {
		t.Fatal(err)
	}
	for i := range ga {
		if !ga[i].Equal(gb[i]) {
			t.Fatalf("empty restore did not reset: tensor %d differs from a fresh optimizer", i)
		}
	}
}

// TestServerMomentumStateRoundTrip: state out, state in, identical updates.
func TestServerMomentumStateRoundTrip(t *testing.T) {
	global, avg := serverTestState(t)
	a, err := NewServerMomentum(0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ga := make([]*tensor.Tensor, len(global))
	for i := range global {
		ga[i] = global[i].Clone()
	}
	if err := a.Apply(ga, avg); err != nil {
		t.Fatal(err)
	}
	snap := a.StateTensors()
	if len(snap) != len(global) {
		t.Fatalf("momentum state has %d tensors, want %d", len(snap), len(global))
	}

	b, err := NewServerMomentum(0.5, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreStateTensors(snap); err != nil {
		t.Fatal(err)
	}
	gb := make([]*tensor.Tensor, len(ga))
	for i := range ga {
		gb[i] = ga[i].Clone()
	}
	if err := a.Apply(ga, avg); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply(gb, avg); err != nil {
		t.Fatal(err)
	}
	for i := range ga {
		if !ga[i].Equal(gb[i]) {
			t.Fatalf("restored momentum diverged at tensor %d", i)
		}
	}
}
