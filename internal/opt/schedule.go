package opt

import (
	"fmt"
	"math"
)

// Schedule maps a zero-based round or epoch index to a learning rate.
type Schedule interface {
	// At returns the learning rate for step t.
	At(t int) float64
}

// ConstantSchedule always returns LR.
type ConstantSchedule struct {
	// LR is the constant learning rate.
	LR float64
}

var _ Schedule = ConstantSchedule{}

// At implements Schedule.
func (c ConstantSchedule) At(int) float64 { return c.LR }

// StepSchedule decays the base rate by Gamma every Every steps.
type StepSchedule struct {
	// Base is the initial learning rate.
	Base float64
	// Every is the decay period in steps; must be positive.
	Every int
	// Gamma is the multiplicative decay per period.
	Gamma float64
}

var _ Schedule = StepSchedule{}

// At implements Schedule.
func (s StepSchedule) At(t int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(t/s.Every))
}

// CosineSchedule anneals from Base to Floor over Horizon steps.
type CosineSchedule struct {
	// Base is the initial learning rate.
	Base float64
	// Floor is the final learning rate.
	Floor float64
	// Horizon is the annealing length in steps; must be positive.
	Horizon int
}

var _ Schedule = CosineSchedule{}

// At implements Schedule.
func (c CosineSchedule) At(t int) float64 {
	if c.Horizon <= 0 {
		return c.Base
	}
	if t >= c.Horizon {
		return c.Floor
	}
	frac := float64(t) / float64(c.Horizon)
	return c.Floor + 0.5*(c.Base-c.Floor)*(1+math.Cos(math.Pi*frac))
}

// Validate checks a schedule's parameters.
func Validate(s Schedule) error {
	switch v := s.(type) {
	case ConstantSchedule:
		if v.LR <= 0 {
			return fmt.Errorf("%w: constant LR %v", ErrConfig, v.LR)
		}
	case StepSchedule:
		if v.Base <= 0 || v.Every <= 0 || v.Gamma <= 0 || v.Gamma > 1 {
			return fmt.Errorf("%w: step schedule %+v", ErrConfig, v)
		}
	case CosineSchedule:
		if v.Base <= 0 || v.Floor < 0 || v.Floor > v.Base || v.Horizon <= 0 {
			return fmt.Errorf("%w: cosine schedule %+v", ErrConfig, v)
		}
	}
	return nil
}
