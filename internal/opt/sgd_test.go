package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"fedfteds/internal/nn"
	"fedfteds/internal/tensor"
)

// quadParam builds a single 1-element parameter with value v.
func quadParam(v float32) *nn.Param {
	w := tensor.MustFromSlice([]float32{v}, 1)
	return &nn.Param{Name: "w", W: w, G: tensor.New(1)}
}

func TestNewSGDValidation(t *testing.T) {
	p := quadParam(1)
	tests := []struct {
		name string
		cfg  SGDConfig
	}{
		{name: "zero lr", cfg: SGDConfig{LR: 0}},
		{name: "negative lr", cfg: SGDConfig{LR: -1}},
		{name: "momentum 1", cfg: SGDConfig{LR: 0.1, Momentum: 1}},
		{name: "negative wd", cfg: SGDConfig{LR: 0.1, WeightDecay: -1}},
		{name: "negative mu", cfg: SGDConfig{LR: 0.1, ProxMu: -0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSGD(tt.cfg, []*nn.Param{p}); !errors.Is(err, ErrConfig) {
				t.Fatalf("expected ErrConfig, got %v", err)
			}
		})
	}
}

func TestSGDMinimizesQuadratic(t *testing.T) {
	// f(w) = (w-3)²/2, grad = w-3; plain SGD should converge to 3.
	p := quadParam(0)
	s, err := NewSGD(SGDConfig{LR: 0.1}, []*nn.Param{p})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		p.G.Data()[0] = p.W.Data()[0] - 3
		s.Step()
	}
	if got := p.W.Data()[0]; math.Abs(float64(got)-3) > 1e-3 {
		t.Fatalf("converged to %v, want 3", got)
	}
}

func TestSGDMomentumMatchesManualUpdate(t *testing.T) {
	p := quadParam(1)
	s, err := NewSGD(SGDConfig{LR: 0.5, Momentum: 0.9}, []*nn.Param{p})
	if err != nil {
		t.Fatal(err)
	}
	// Two steps with constant gradient 1:
	// v1 = 1,        w1 = 1 - 0.5*1   = 0.5
	// v2 = 0.9 + 1,  w2 = 0.5 - 0.95  = -0.45
	p.G.Data()[0] = 1
	s.Step()
	if got := p.W.Data()[0]; math.Abs(float64(got)-0.5) > 1e-6 {
		t.Fatalf("after step 1: %v, want 0.5", got)
	}
	p.G.Data()[0] = 1
	s.Step()
	if got := p.W.Data()[0]; math.Abs(float64(got)+0.45) > 1e-6 {
		t.Fatalf("after step 2: %v, want -0.45", got)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := quadParam(2)
	s, err := NewSGD(SGDConfig{LR: 0.1, WeightDecay: 0.5}, []*nn.Param{p})
	if err != nil {
		t.Fatal(err)
	}
	// Zero task gradient: w ← w - lr*wd*w = 2 - 0.1*0.5*2 = 1.9.
	s.Step()
	if got := p.W.Data()[0]; math.Abs(float64(got)-1.9) > 1e-6 {
		t.Fatalf("w = %v, want 1.9", got)
	}
}

func TestSGDNoDecayRespected(t *testing.T) {
	p := quadParam(2)
	p.NoDecay = true
	s, err := NewSGD(SGDConfig{LR: 0.1, WeightDecay: 0.5}, []*nn.Param{p})
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	if got := p.W.Data()[0]; got != 2 {
		t.Fatalf("NoDecay param changed to %v", got)
	}
}

func TestSGDProximalPullsTowardAnchor(t *testing.T) {
	p := quadParam(5)
	s, err := NewSGD(SGDConfig{LR: 0.1, ProxMu: 1.0}, []*nn.Param{p})
	if err != nil {
		t.Fatal(err)
	}
	anchor := tensor.MustFromSlice([]float32{0}, 1)
	if err := s.SetProxAnchor([]*tensor.Tensor{anchor}); err != nil {
		t.Fatal(err)
	}
	// Zero task gradient: proximal term alone pulls w toward 0.
	for i := 0; i < 100; i++ {
		s.Step()
	}
	if got := p.W.Data()[0]; math.Abs(float64(got)) > 1e-3 {
		t.Fatalf("w = %v, want ~0 under proximal pull", got)
	}
}

func TestSGDProximalAnchorShapeMismatch(t *testing.T) {
	p := quadParam(1)
	s, err := NewSGD(SGDConfig{LR: 0.1, ProxMu: 1}, []*nn.Param{p})
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(2)
	if err := s.SetProxAnchor([]*tensor.Tensor{bad}); !errors.Is(err, ErrConfig) {
		t.Fatalf("expected ErrConfig, got %v", err)
	}
	if err := s.SetProxAnchor(nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("expected ErrConfig for count mismatch, got %v", err)
	}
}

func TestSGDStepZeroesGradients(t *testing.T) {
	p := quadParam(1)
	s, err := NewSGD(SGDConfig{LR: 0.1}, []*nn.Param{p})
	if err != nil {
		t.Fatal(err)
	}
	p.G.Data()[0] = 7
	s.Step()
	if p.G.Data()[0] != 0 {
		t.Fatal("Step did not zero gradients")
	}
}

func TestSGDNesterovDiffersFromHeavyBall(t *testing.T) {
	mk := func(nesterov bool) float32 {
		p := quadParam(1)
		s, err := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.9, Nesterov: nesterov}, []*nn.Param{p})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			p.G.Data()[0] = 1
			s.Step()
		}
		return p.W.Data()[0]
	}
	if mk(true) == mk(false) {
		t.Fatal("Nesterov and heavy-ball updates are identical")
	}
}

func TestSGDTrainsRealModel(t *testing.T) {
	// End-to-end: a dense net fits a separable 2-class problem.
	rng := rand.New(rand.NewSource(1))
	d1, err := nn.NewDense("fc1", 2, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := nn.NewDense("fc2", 16, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := nn.NewSequential("net", d1, nn.NewReLU("r"), d2)
	s, err := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.5}, model.Params())
	if err != nil {
		t.Fatal(err)
	}

	n := 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		cx := float32(2*cls - 1) // -1 or +1
		x.Set(cx+0.3*float32(rng.NormFloat64()), i, 0)
		x.Set(0.3*float32(rng.NormFloat64()), i, 1)
	}
	loss := nn.SoftmaxCrossEntropy{}
	var last float64
	for epoch := 0; epoch < 60; epoch++ {
		logits := model.Forward(x, true)
		v, dl, err := loss.Loss(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		model.Backward(dl, false)
		s.Step()
		last = v
	}
	if last > 0.1 {
		t.Fatalf("final loss %v, want < 0.1 on separable data", last)
	}
}

func TestSchedules(t *testing.T) {
	tests := []struct {
		name string
		s    Schedule
		t    int
		want float64
	}{
		{name: "constant", s: ConstantSchedule{LR: 0.1}, t: 100, want: 0.1},
		{name: "step at 0", s: StepSchedule{Base: 1, Every: 10, Gamma: 0.5}, t: 9, want: 1},
		{name: "step after decay", s: StepSchedule{Base: 1, Every: 10, Gamma: 0.5}, t: 10, want: 0.5},
		{name: "step two decays", s: StepSchedule{Base: 1, Every: 10, Gamma: 0.5}, t: 25, want: 0.25},
		{name: "cosine start", s: CosineSchedule{Base: 1, Floor: 0, Horizon: 10}, t: 0, want: 1},
		{name: "cosine end", s: CosineSchedule{Base: 1, Floor: 0.1, Horizon: 10}, t: 10, want: 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.s.At(tt.t); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("At(%d) = %v, want %v", tt.t, got, tt.want)
			}
		})
	}
}

func TestCosineMidpoint(t *testing.T) {
	s := CosineSchedule{Base: 1, Floor: 0, Horizon: 10}
	if got := s.At(5); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("cosine midpoint = %v, want 0.5", got)
	}
}

func TestValidateSchedules(t *testing.T) {
	if err := Validate(ConstantSchedule{LR: -1}); err == nil {
		t.Fatal("expected error for negative constant LR")
	}
	if err := Validate(StepSchedule{Base: 1, Every: 0, Gamma: 0.5}); err == nil {
		t.Fatal("expected error for zero period")
	}
	if err := Validate(CosineSchedule{Base: 1, Floor: 2, Horizon: 5}); err == nil {
		t.Fatal("expected error for floor above base")
	}
	if err := Validate(ConstantSchedule{LR: 0.1}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestStateTensorsRoundTrip pins the optimizer checkpoint accessors:
// velocity (and the proximal anchor when set) survive a snapshot/restore
// cycle, and a restored optimizer steps identically to the original.
func TestStateTensorsRoundTrip(t *testing.T) {
	build := func() ([]*nn.Param, *SGD) {
		w := &nn.Param{Name: "w", W: tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2), G: tensor.New(2, 2)}
		s, err := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.9, ProxMu: 0.01}, []*nn.Param{w})
		if err != nil {
			t.Fatal(err)
		}
		return []*nn.Param{w}, s
	}
	step := func(params []*nn.Param, s *SGD, g float32) {
		for _, p := range params {
			p.G.Fill(g)
		}
		s.Step()
	}

	paramsA, a := build()
	a.SnapshotProxAnchor()
	step(paramsA, a, 0.5)
	step(paramsA, a, -0.25)

	st := a.StateTensors()
	if len(st) != 2 { // velocity + anchor
		t.Fatalf("state tensors %d, want 2", len(st))
	}
	snapshot := make([]*tensor.Tensor, len(st))
	for i, ts := range st {
		snapshot[i] = ts.Clone()
	}

	paramsB, b := build()
	b.SnapshotProxAnchor()
	step(paramsB, b, 0.5)
	step(paramsB, b, -0.25)
	// Desync b, then restore it from a's snapshot (weights must match too).
	step(paramsB, b, 1)
	if err := paramsB[0].W.CopyFrom(paramsA[0].W); err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreStateTensors(snapshot); err != nil {
		t.Fatal(err)
	}

	step(paramsA, a, 0.125)
	step(paramsB, b, 0.125)
	if !paramsA[0].W.Equal(paramsB[0].W) {
		t.Fatal("restored optimizer diverged from original")
	}

	// Velocity-only restore drops the anchor.
	if err := b.RestoreStateTensors(snapshot[:1]); err != nil {
		t.Fatal(err)
	}
	if got := b.StateTensors(); len(got) != 1 {
		t.Fatalf("velocity-only restore kept %d state tensors, want 1", len(got))
	}

	// Wrong counts and shapes are rejected.
	if err := b.RestoreStateTensors(nil); err == nil {
		t.Fatal("empty restore accepted")
	}
	bad := []*tensor.Tensor{tensor.New(3)}
	if err := b.RestoreStateTensors(bad); err == nil {
		t.Fatal("shape-mismatched restore accepted")
	}
}
