package nn

import (
	"fmt"

	"fedfteds/internal/tensor"
)

// Sequential chains layers. It implements Layer itself, so it can be nested
// (residual block branches are Sequentials).
type Sequential struct {
	name   string
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential constructs a sequential container over the given layers.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Layers returns the contained layers. The slice is owned by the container.
func (s *Sequential) Layers() []Layer { return s.layers }

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.layers = append(s.layers, layers...) }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// ForwardCollect runs a forward pass returning the output of every direct
// child layer; used to extract intermediate representations for CKA. The
// returned tensors are snapshots (clones), so they stay valid across further
// forward passes despite the layer workspace reuse.
func (s *Sequential) ForwardCollect(x *tensor.Tensor, train bool) []*tensor.Tensor {
	outs := make([]*tensor.Tensor, 0, len(s.layers))
	for _, l := range s.layers {
		x = l.Forward(x, train)
		outs = append(outs, x.Clone())
	}
	return outs
}

// VisitLayers calls f for every leaf layer under s in depth-first order,
// descending into nested Sequential and Residual containers.
func (s *Sequential) VisitLayers(f func(Layer)) {
	for _, l := range s.layers {
		visitLayer(l, f)
	}
}

func visitLayer(l Layer, f func(Layer)) {
	switch v := l.(type) {
	case *Sequential:
		v.VisitLayers(f)
	case *Residual:
		v.body.VisitLayers(f)
		if v.shortcut != nil {
			v.shortcut.VisitLayers(f)
		}
	default:
		f(l)
	}
}

// Backward implements Layer. Backpropagation stops below the lowest
// non-frozen layer unless the caller itself requires dx.
func (s *Sequential) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	lowest := len(s.layers) // index of lowest trainable layer
	for i, l := range s.layers {
		if !layerFullyFrozen(l) {
			lowest = i
			break
		}
	}
	for i := len(s.layers) - 1; i >= 0; i-- {
		need := needDx || i > lowest
		dy = s.layers[i].Backward(dy, need)
		if dy == nil && i > 0 && need {
			panic(fmt.Sprintf("nn: sequential %q: layer %q returned nil gradient", s.name, s.layers[i].Name()))
		}
		if !need {
			return nil
		}
	}
	return dy
}

// layerFullyFrozen reports whether l and (for containers) all its descendants
// are frozen.
func layerFullyFrozen(l Layer) bool {
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.layers {
			if !layerFullyFrozen(c) {
				return false
			}
		}
		return true
	case *Residual:
		return layerFullyFrozen(v.body) && (v.shortcut == nil || layerFullyFrozen(v.shortcut))
	default:
		return l.Frozen()
	}
}

// Params implements Layer, collecting parameters of all children in order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// TrainableParams returns parameters of non-frozen descendants only.
func (s *Sequential) TrainableParams() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		switch v := l.(type) {
		case *Sequential:
			ps = append(ps, v.TrainableParams()...)
		case *Residual:
			ps = append(ps, v.TrainableParams()...)
		default:
			if !l.Frozen() {
				ps = append(ps, l.Params()...)
			}
		}
	}
	return ps
}

// FrozenParams returns parameters of frozen descendants only — the exact
// complement of TrainableParams, so for any freeze mask the two partition
// Params with no tensor duplicated or lost.
func (s *Sequential) FrozenParams() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		switch v := l.(type) {
		case *Sequential:
			ps = append(ps, v.FrozenParams()...)
		case *Residual:
			ps = append(ps, v.FrozenParams()...)
		default:
			if l.Frozen() {
				ps = append(ps, l.Params()...)
			}
		}
	}
	return ps
}

// Buffers implements Layer.
func (s *Sequential) Buffers() []*tensor.Tensor {
	var bs []*tensor.Tensor
	for _, l := range s.layers {
		bs = append(bs, l.Buffers()...)
	}
	return bs
}

// SetFrozen implements Layer, applying to every child.
func (s *Sequential) SetFrozen(f bool) {
	for _, l := range s.layers {
		l.SetFrozen(f)
	}
}

// Frozen implements Layer: true when every child is frozen.
func (s *Sequential) Frozen() bool { return layerFullyFrozen(s) }

// ZeroGrads zeroes all parameter gradients.
func (s *Sequential) ZeroGrads() {
	for _, p := range s.Params() {
		p.G.Zero()
	}
}

// OutputShape implements Layer.
func (s *Sequential) OutputShape(in []int) ([]int, error) {
	var err error
	for _, l := range s.layers {
		in, err = l.OutputShape(in)
		if err != nil {
			return nil, fmt.Errorf("nn: sequential %q: %w", s.name, err)
		}
	}
	return in, nil
}

// FLOPsPerSample implements Layer, summing children along the shape chain.
// It panics if the input shape is incompatible (programmer error).
func (s *Sequential) FLOPsPerSample(in []int) int64 {
	var total int64
	for _, l := range s.layers {
		total += l.FLOPsPerSample(in)
		next, err := l.OutputShape(in)
		if err != nil {
			panic(err)
		}
		in = next
	}
	return total
}

// Residual adds a body path to a shortcut path: y = body(x) + shortcut(x).
// A nil shortcut is the identity. This is the building block of the Wide
// ResNet (pre-activation form is expressed by the body's layer order).
type Residual struct {
	name     string
	body     *Sequential
	shortcut *Sequential // nil means identity

	// Cached workspaces, reused across steps (see the package aliasing rule).
	out, dx *tensor.Tensor
	inShape []int // x's shape, the shape of the dx workspace
	shape   []int // y's shape, the shape of the out workspace
}

var _ Layer = (*Residual)(nil)

// NewResidual constructs a residual block. shortcut may be nil for identity.
func NewResidual(name string, body *Sequential, shortcut *Sequential) *Residual {
	return &Residual{name: name, body: body, shortcut: shortcut}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := r.body.Forward(x, train)
	var sc *tensor.Tensor
	if r.shortcut != nil {
		sc = r.shortcut.Forward(x, train)
	} else {
		sc = x
	}
	r.inShape = captureShape(r.inShape, x)
	r.shape = captureShape(r.shape, y)
	r.out = tensor.Ensure(r.out, r.shape...)
	if err := r.out.CopyFrom(y); err != nil {
		panic(err)
	}
	if err := r.out.Add(sc); err != nil {
		panic(fmt.Sprintf("nn: residual %q: body %v vs shortcut %v", r.name, y.Shape(), sc.Shape()))
	}
	return r.out
}

// Backward implements Layer.
func (r *Residual) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	bodyNeedDx := needDx || r.shortcut != nil // identity shortcut passes dy through anyway
	dxBody := r.body.Backward(dy, bodyNeedDx)
	if r.shortcut != nil {
		dxSc := r.shortcut.Backward(dy, needDx)
		if !needDx {
			return nil
		}
		r.dx = tensor.Ensure(r.dx, r.inShape...)
		if err := r.dx.CopyFrom(dxBody); err != nil {
			panic(err)
		}
		if err := r.dx.Add(dxSc); err != nil {
			panic(err)
		}
		return r.dx
	}
	if !needDx {
		return nil
	}
	// Identity shortcut: dx = body dx + dy.
	r.dx = tensor.Ensure(r.dx, r.inShape...)
	if dxBody != nil {
		if err := r.dx.CopyFrom(dxBody); err != nil {
			panic(err)
		}
	} else {
		r.dx.Zero()
	}
	if err := r.dx.Add(dy); err != nil {
		panic(err)
	}
	return r.dx
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.body.Params()
	if r.shortcut != nil {
		ps = append(ps, r.shortcut.Params()...)
	}
	return ps
}

// TrainableParams returns parameters of non-frozen descendants.
func (r *Residual) TrainableParams() []*Param {
	ps := r.body.TrainableParams()
	if r.shortcut != nil {
		ps = append(ps, r.shortcut.TrainableParams()...)
	}
	return ps
}

// FrozenParams returns parameters of frozen descendants, complementing
// TrainableParams (see Sequential.FrozenParams).
func (r *Residual) FrozenParams() []*Param {
	ps := r.body.FrozenParams()
	if r.shortcut != nil {
		ps = append(ps, r.shortcut.FrozenParams()...)
	}
	return ps
}

// Buffers implements Layer.
func (r *Residual) Buffers() []*tensor.Tensor {
	bs := r.body.Buffers()
	if r.shortcut != nil {
		bs = append(bs, r.shortcut.Buffers()...)
	}
	return bs
}

// SetFrozen implements Layer.
func (r *Residual) SetFrozen(f bool) {
	r.body.SetFrozen(f)
	if r.shortcut != nil {
		r.shortcut.SetFrozen(f)
	}
}

// Frozen implements Layer.
func (r *Residual) Frozen() bool { return layerFullyFrozen(r) }

// OutputShape implements Layer.
func (r *Residual) OutputShape(in []int) ([]int, error) {
	out, err := r.body.OutputShape(in)
	if err != nil {
		return nil, err
	}
	if r.shortcut != nil {
		scOut, err := r.shortcut.OutputShape(in)
		if err != nil {
			return nil, err
		}
		if tensor.Volume(scOut) != tensor.Volume(out) {
			return nil, fmt.Errorf("nn: residual %q: body %v vs shortcut %v", r.name, out, scOut)
		}
	} else if tensor.Volume(in) != tensor.Volume(out) {
		return nil, fmt.Errorf("nn: residual %q: identity shortcut with body %v -> %v", r.name, in, out)
	}
	return out, nil
}

// FLOPsPerSample implements Layer.
func (r *Residual) FLOPsPerSample(in []int) int64 {
	total := r.body.FLOPsPerSample(in)
	if r.shortcut != nil {
		total += r.shortcut.FLOPsPerSample(in)
	}
	out, err := r.body.OutputShape(in)
	if err == nil {
		total += int64(tensor.Volume(out)) // the addition
	}
	return total
}
