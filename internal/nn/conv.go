package nn

import (
	"fmt"
	"math/rand"

	"fedfteds/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs implemented with
// im2col and the tensor package's parallel matmul.
type Conv2D struct {
	base
	inC, outC       int
	kernel          int
	stride, padding int
	useBias         bool

	weight *Param // (outC, inC*kernel*kernel)
	bias   *Param // (outC), nil when useBias is false

	cols      *tensor.Tensor // im2col workspace (N*OH*OW, inC*K*K)
	colsValid bool           // cols holds the last training forward's unpacking
	inShape   []int          // cached input shape (reused buffer)

	// Cached workspaces, reused across steps (see the package aliasing rule).
	out, y, dout, dw, db, dcols, dx *tensor.Tensor
}

var _ Layer = (*Conv2D)(nil)

// ConvOpts configures optional Conv2D behaviour.
type ConvOpts struct {
	// Stride is the convolution stride (default 1).
	Stride int
	// Padding is the symmetric zero padding (default 0).
	Padding int
	// NoBias omits the additive bias (the usual choice before batch norm).
	NoBias bool
}

// NewConv2D constructs a kernel×kernel convolution with He-normal weights.
func NewConv2D(name string, inC, outC, kernel int, opts ConvOpts, rng *rand.Rand) (*Conv2D, error) {
	if inC <= 0 || outC <= 0 || kernel <= 0 {
		return nil, fmt.Errorf("nn: conv %q: invalid dims inC=%d outC=%d k=%d", name, inC, outC, kernel)
	}
	stride := opts.Stride
	if stride == 0 {
		stride = 1
	}
	if stride < 0 || opts.Padding < 0 {
		return nil, fmt.Errorf("nn: conv %q: invalid stride=%d padding=%d", name, stride, opts.Padding)
	}
	fanIn := inC * kernel * kernel
	w := tensor.New(outC, fanIn)
	w.FillKaiming(rng, fanIn)
	c := &Conv2D{
		base:    base{name: name},
		inC:     inC,
		outC:    outC,
		kernel:  kernel,
		stride:  stride,
		padding: opts.Padding,
		useBias: !opts.NoBias,
		weight:  newParam("weight", w, false),
	}
	if c.useBias {
		c.bias = newParam("bias", tensor.New(outC), true)
	}
	return c, nil
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.bias != nil {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

// outDims returns output spatial dims for input spatial dims.
func (c *Conv2D) outDims(h, w int) (oh, ow int) {
	oh = (h+2*c.padding-c.kernel)/c.stride + 1
	ow = (w+2*c.padding-c.kernel)/c.stride + 1
	return oh, ow
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		panic(shapeErr("conv "+c.name, []int{-1, c.inC, -1, -1}, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.outDims(h, w)
	if oh <= 0 || ow <= 0 {
		panic(shapeErr("conv "+c.name, "positive output dims", x.Shape()))
	}
	ck := c.inC * c.kernel * c.kernel
	c.cols = tensor.Ensure(c.cols, n*oh*ow, ck)
	im2col(x.Data(), c.cols.Data(), n, c.inC, h, w, c.kernel, c.stride, c.padding, oh, ow)

	// out (N*OH*OW, outC) = cols @ Wᵀ.
	c.out = tensor.Ensure(c.out, n*oh*ow, c.outC)
	if err := tensor.MatMulTransB(c.out, c.cols, c.weight.W); err != nil {
		panic(err)
	}
	if c.useBias {
		if err := c.out.AddRowVector(c.bias.W); err != nil {
			panic(err)
		}
	}

	// Reorder rows (n, oh, ow) × outC to (N, outC, OH, OW).
	c.y = tensor.Ensure(c.y, n, c.outC, oh, ow)
	od, yd := c.out.Data(), c.y.Data()
	sp := oh * ow
	for i := 0; i < n; i++ {
		for s := 0; s < sp; s++ {
			row := od[(i*sp+s)*c.outC : (i*sp+s+1)*c.outC]
			for oc := 0; oc < c.outC; oc++ {
				yd[(i*c.outC+oc)*sp+s] = row[oc]
			}
		}
	}

	c.colsValid = train && !c.frozen
	c.inShape = captureShape(c.inShape, x)
	return c.y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if dy.Rank() != 4 || dy.Dim(1) != c.outC {
		panic(shapeErr("conv "+c.name+" backward", []int{-1, c.outC, -1, -1}, dy.Shape()))
	}
	n, oh, ow := dy.Dim(0), dy.Dim(2), dy.Dim(3)
	sp := oh * ow
	ck := c.inC * c.kernel * c.kernel

	// dOut (N*OH*OW, outC): reorder from (N, outC, OH, OW).
	c.dout = tensor.Ensure(c.dout, n*sp, c.outC)
	dd, dyd := c.dout.Data(), dy.Data()
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.outC; oc++ {
			src := dyd[(i*c.outC+oc)*sp : (i*c.outC+oc+1)*sp]
			for s, v := range src {
				dd[(i*sp+s)*c.outC+oc] = v
			}
		}
	}

	if !c.frozen {
		if !c.colsValid {
			panic("nn: conv " + c.name + ": Backward without train Forward")
		}
		// dW += dOutᵀ @ cols ; db += column sums of dOut.
		c.dw = tensor.Ensure(c.dw, c.outC, ck)
		if err := tensor.MatMulTransA(c.dw, c.dout, c.cols); err != nil {
			panic(err)
		}
		if err := c.weight.G.Add(c.dw); err != nil {
			panic(err)
		}
		if c.useBias {
			c.db = tensor.Ensure(c.db, c.outC)
			if err := c.dout.SumRows(c.db); err != nil {
				panic(err)
			}
			if err := c.bias.G.Add(c.db); err != nil {
				panic(err)
			}
		}
	}
	if !needDx {
		return nil
	}
	// dcols = dOut @ W, then scatter back with col2im.
	c.dcols = tensor.Ensure(c.dcols, n*sp, ck)
	if err := tensor.MatMul(c.dcols, c.dout, c.weight.W); err != nil {
		panic(err)
	}
	h, w := c.inShape[2], c.inShape[3]
	c.dx = tensor.Ensure(c.dx, n, c.inC, h, w)
	c.dx.Zero()
	col2im(c.dcols.Data(), c.dx.Data(), n, c.inC, h, w, c.kernel, c.stride, c.padding, oh, ow)
	return c.dx
}

// OutputShape implements Layer.
func (c *Conv2D) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.inC {
		return nil, fmt.Errorf("nn: conv %q: per-sample input %v, want [%d H W]", c.name, in, c.inC)
	}
	oh, ow := c.outDims(in[1], in[2])
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv %q: input %v too small for kernel %d", c.name, in, c.kernel)
	}
	return []int{c.outC, oh, ow}, nil
}

// FLOPsPerSample implements Layer: 2 × MACs of the im2col matmul.
func (c *Conv2D) FLOPsPerSample(in []int) int64 {
	oh, ow := c.outDims(in[1], in[2])
	return 2 * int64(c.inC*c.kernel*c.kernel) * int64(c.outC) * int64(oh*ow)
}

// im2col unpacks convolution windows of x (N,C,H,W) into rows of cols
// ((N*OH*OW) × (C*K*K)), zero-padding out-of-range positions.
func im2col(x, cols []float32, n, ch, h, w, k, stride, pad, oh, ow int) {
	ck := ch * k * k
	for i := 0; i < n; i++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols[((i*oh+oy)*ow+ox)*ck:]
				for cc := 0; cc < ch; cc++ {
					base := (i*ch + cc) * h * w
					for ky := 0; ky < k; ky++ {
						iy := oy*stride - pad + ky
						for kx := 0; kx < k; kx++ {
							ix := ox*stride - pad + kx
							var v float32
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								v = x[base+iy*w+ix]
							}
							row[(cc*k+ky)*k+kx] = v
						}
					}
				}
			}
		}
	}
}

// col2im scatter-adds gradient columns back into dx (N,C,H,W).
func col2im(cols, dx []float32, n, ch, h, w, k, stride, pad, oh, ow int) {
	ck := ch * k * k
	for i := 0; i < n; i++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols[((i*oh+oy)*ow+ox)*ck:]
				for cc := 0; cc < ch; cc++ {
					base := (i*ch + cc) * h * w
					for ky := 0; ky < k; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							dx[base+iy*w+ix] += row[(cc*k+ky)*k+kx]
						}
					}
				}
			}
		}
	}
}
