package nn

import (
	"fmt"
	"math/rand"

	"fedfteds/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs implemented with
// im2col and the tensor package's parallel matmul.
type Conv2D struct {
	base
	inC, outC       int
	kernel          int
	stride, padding int
	useBias         bool

	weight *Param // (outC, inC*kernel*kernel)
	bias   *Param // (outC), nil when useBias is false

	cols      *tensor.Tensor // im2col workspace (N*OH*OW, inC*K*K)
	colsValid bool           // cols holds the last training forward's unpacking
	inShape   []int          // cached input shape (reused buffer)

	// Cached workspaces, reused across steps (see the package aliasing rule).
	out, y, dout, dw, db, dcols, dx *tensor.Tensor

	// Batch-parallel loop plumbing: the unpack/reorder/scatter loops run
	// over samples through tensor.ParallelFor. Per-call arguments are staged
	// in fields and the closures cached once per layer, so steady-state
	// dispatch allocates nothing. Partitioning is by sample and every loop
	// writes disjoint per-sample regions (col2im's += only touches its own
	// sample's dx), so results are identical at any worker count.
	px, pdy          []float32
	ph, pw, poh, pow int

	im2colFn, fwdReorderFn, bwdReorderFn, col2imFn func(lo, hi int)
}

var _ Layer = (*Conv2D)(nil)

// ConvOpts configures optional Conv2D behaviour.
type ConvOpts struct {
	// Stride is the convolution stride (default 1).
	Stride int
	// Padding is the symmetric zero padding (default 0).
	Padding int
	// NoBias omits the additive bias (the usual choice before batch norm).
	NoBias bool
}

// NewConv2D constructs a kernel×kernel convolution with He-normal weights.
func NewConv2D(name string, inC, outC, kernel int, opts ConvOpts, rng *rand.Rand) (*Conv2D, error) {
	if inC <= 0 || outC <= 0 || kernel <= 0 {
		return nil, fmt.Errorf("nn: conv %q: invalid dims inC=%d outC=%d k=%d", name, inC, outC, kernel)
	}
	stride := opts.Stride
	if stride == 0 {
		stride = 1
	}
	if stride < 0 || opts.Padding < 0 {
		return nil, fmt.Errorf("nn: conv %q: invalid stride=%d padding=%d", name, stride, opts.Padding)
	}
	fanIn := inC * kernel * kernel
	w := tensor.New(outC, fanIn)
	w.FillKaiming(rng, fanIn)
	c := &Conv2D{
		base:    base{name: name},
		inC:     inC,
		outC:    outC,
		kernel:  kernel,
		stride:  stride,
		padding: opts.Padding,
		useBias: !opts.NoBias,
		weight:  newParam("weight", w, false),
	}
	if c.useBias {
		c.bias = newParam("bias", tensor.New(outC), true)
	}
	return c, nil
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.bias != nil {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

// outDims returns output spatial dims for input spatial dims.
func (c *Conv2D) outDims(h, w int) (oh, ow int) {
	oh = (h+2*c.padding-c.kernel)/c.stride + 1
	ow = (w+2*c.padding-c.kernel)/c.stride + 1
	return oh, ow
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		panic(shapeErr("conv "+c.name, []int{-1, c.inC, -1, -1}, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.outDims(h, w)
	if oh <= 0 || ow <= 0 {
		panic(shapeErr("conv "+c.name, "positive output dims", x.Shape()))
	}
	ck := c.inC * c.kernel * c.kernel
	c.cols = tensor.Ensure(c.cols, n*oh*ow, ck)
	c.px, c.ph, c.pw, c.poh, c.pow = x.Data(), h, w, oh, ow
	if c.im2colFn == nil {
		c.im2colFn = func(lo, hi int) {
			im2colRange(c.px, c.cols.Data(), lo, hi, c.inC, c.ph, c.pw, c.kernel, c.stride, c.padding, c.poh, c.pow)
		}
	}
	tensor.ParallelFor(n, 1, c.im2colFn)

	// out (N*OH*OW, outC) = cols @ Wᵀ.
	c.out = tensor.Ensure(c.out, n*oh*ow, c.outC)
	if err := tensor.MatMulTransB(c.out, c.cols, c.weight.W); err != nil {
		panic(err)
	}
	if c.useBias {
		if err := c.out.AddRowVector(c.bias.W); err != nil {
			panic(err)
		}
	}

	// Reorder rows (n, oh, ow) × outC to (N, outC, OH, OW).
	c.y = tensor.Ensure(c.y, n, c.outC, oh, ow)
	if c.fwdReorderFn == nil {
		c.fwdReorderFn = func(lo, hi int) {
			od, yd := c.out.Data(), c.y.Data()
			sp := c.poh * c.pow
			for i := lo; i < hi; i++ {
				for s := 0; s < sp; s++ {
					row := od[(i*sp+s)*c.outC : (i*sp+s+1)*c.outC]
					for oc := 0; oc < c.outC; oc++ {
						yd[(i*c.outC+oc)*sp+s] = row[oc]
					}
				}
			}
		}
	}
	tensor.ParallelFor(n, 1, c.fwdReorderFn)

	c.colsValid = train && !c.frozen
	c.inShape = captureShape(c.inShape, x)
	return c.y
}

// Backward implements Layer.
func (c *Conv2D) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if dy.Rank() != 4 || dy.Dim(1) != c.outC {
		panic(shapeErr("conv "+c.name+" backward", []int{-1, c.outC, -1, -1}, dy.Shape()))
	}
	n, oh, ow := dy.Dim(0), dy.Dim(2), dy.Dim(3)
	sp := oh * ow
	ck := c.inC * c.kernel * c.kernel

	// dOut (N*OH*OW, outC): reorder from (N, outC, OH, OW).
	c.dout = tensor.Ensure(c.dout, n*sp, c.outC)
	c.pdy, c.poh, c.pow = dy.Data(), oh, ow
	if c.bwdReorderFn == nil {
		c.bwdReorderFn = func(lo, hi int) {
			dd, spp := c.dout.Data(), c.poh*c.pow
			for i := lo; i < hi; i++ {
				for oc := 0; oc < c.outC; oc++ {
					src := c.pdy[(i*c.outC+oc)*spp : (i*c.outC+oc+1)*spp]
					for s, v := range src {
						dd[(i*spp+s)*c.outC+oc] = v
					}
				}
			}
		}
	}
	tensor.ParallelFor(n, 1, c.bwdReorderFn)

	if !c.frozen {
		if !c.colsValid {
			panic("nn: conv " + c.name + ": Backward without train Forward")
		}
		// dW += dOutᵀ @ cols ; db += column sums of dOut.
		c.dw = tensor.Ensure(c.dw, c.outC, ck)
		if err := tensor.MatMulTransA(c.dw, c.dout, c.cols); err != nil {
			panic(err)
		}
		if err := c.weight.G.Add(c.dw); err != nil {
			panic(err)
		}
		if c.useBias {
			c.db = tensor.Ensure(c.db, c.outC)
			if err := c.dout.SumRows(c.db); err != nil {
				panic(err)
			}
			if err := c.bias.G.Add(c.db); err != nil {
				panic(err)
			}
		}
	}
	if !needDx {
		return nil
	}
	// dcols = dOut @ W, then scatter back with col2im.
	c.dcols = tensor.Ensure(c.dcols, n*sp, ck)
	if err := tensor.MatMul(c.dcols, c.dout, c.weight.W); err != nil {
		panic(err)
	}
	h, w := c.inShape[2], c.inShape[3]
	c.dx = tensor.Ensure(c.dx, n, c.inC, h, w)
	c.dx.Zero()
	c.ph, c.pw = h, w
	if c.col2imFn == nil {
		c.col2imFn = func(lo, hi int) {
			col2imRange(c.dcols.Data(), c.dx.Data(), lo, hi, c.inC, c.ph, c.pw, c.kernel, c.stride, c.padding, c.poh, c.pow)
		}
	}
	tensor.ParallelFor(n, 1, c.col2imFn)
	return c.dx
}

// OutputShape implements Layer.
func (c *Conv2D) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != c.inC {
		return nil, fmt.Errorf("nn: conv %q: per-sample input %v, want [%d H W]", c.name, in, c.inC)
	}
	oh, ow := c.outDims(in[1], in[2])
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: conv %q: input %v too small for kernel %d", c.name, in, c.kernel)
	}
	return []int{c.outC, oh, ow}, nil
}

// FLOPsPerSample implements Layer: 2 × MACs of the im2col matmul.
func (c *Conv2D) FLOPsPerSample(in []int) int64 {
	oh, ow := c.outDims(in[1], in[2])
	return 2 * int64(c.inC*c.kernel*c.kernel) * int64(c.outC) * int64(oh*ow)
}

// im2colRange unpacks convolution windows of samples [lo, hi) of x
// (N,C,H,W) into rows of cols ((N*OH*OW) × (C*K*K)), zero-padding
// out-of-range positions. Samples are independent, so the batch can be
// partitioned freely across workers. A window row whose k source pixels
// are all in bounds — every row of every interior pixel, the vast
// majority — is one contiguous copy; only edge pixels take the scalar
// bounds-checked path.
func im2colRange(x, cols []float32, lo, hi, ch, h, w, k, stride, pad, oh, ow int) {
	ck := ch * k * k
	kk := k * k
	for i := lo; i < hi; i++ {
		rowOff := i * oh * ow * ck
		for oy := 0; oy < oh; oy++ {
			iy0 := oy*stride - pad
			inY := iy0 >= 0 && iy0+k <= h
			for ox := 0; ox < ow; ox++ {
				row := cols[rowOff : rowOff+ck]
				rowOff += ck
				ix0 := ox*stride - pad
				if inY && ix0 >= 0 && ix0+k <= w {
					switch k {
					case 3: // the dominant conv shape: nine direct moves
						for cc := 0; cc < ch; cc++ {
							p := (i*ch+cc)*h*w + iy0*w + ix0
							s0 := x[p : p+3]
							s1 := x[p+w : p+w+3]
							s2 := x[p+2*w : p+2*w+3]
							d := row[cc*9 : cc*9+9]
							d[0], d[1], d[2] = s0[0], s0[1], s0[2]
							d[3], d[4], d[5] = s1[0], s1[1], s1[2]
							d[6], d[7], d[8] = s2[0], s2[1], s2[2]
						}
					case 1: // 1×1 shortcut convs: a channel gather
						for cc := 0; cc < ch; cc++ {
							row[cc] = x[(i*ch+cc)*h*w+iy0*w+ix0]
						}
					default:
						for cc := 0; cc < ch; cc++ {
							p := (i*ch+cc)*h*w + iy0*w + ix0
							d := row[cc*kk : (cc+1)*kk]
							for ky := 0; ky < k; ky++ {
								copy(d[ky*k:ky*k+k], x[p+ky*w:p+ky*w+k])
							}
						}
					}
					continue
				}
				// Edge pixel: scalar taps with zero padding.
				for cc := 0; cc < ch; cc++ {
					base := (i*ch + cc) * h * w
					dst := row[cc*kk : (cc+1)*kk]
					for ky := 0; ky < k; ky++ {
						iy := iy0 + ky
						d := dst[ky*k : ky*k+k]
						if iy < 0 || iy >= h {
							for j := range d {
								d[j] = 0
							}
							continue
						}
						src := x[base+iy*w : base+iy*w+w]
						for kx := 0; kx < k; kx++ {
							ix := ix0 + kx
							var v float32
							if ix >= 0 && ix < w {
								v = src[ix]
							}
							d[kx] = v
						}
					}
				}
			}
		}
	}
}

// col2imRange scatter-adds gradient columns of samples [lo, hi) back into
// dx (N,C,H,W). Each sample's windows only touch that sample's dx plane and
// the within-sample accumulation order is the serial one, so batch
// partitioning changes no result bit.
func col2imRange(cols, dx []float32, lo, hi, ch, h, w, k, stride, pad, oh, ow int) {
	ck := ch * k * k
	for i := lo; i < hi; i++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := cols[((i*oh+oy)*ow+ox)*ck:]
				for cc := 0; cc < ch; cc++ {
					base := (i*ch + cc) * h * w
					for ky := 0; ky < k; ky++ {
						iy := oy*stride - pad + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*stride - pad + kx
							if ix < 0 || ix >= w {
								continue
							}
							dx[base+iy*w+ix] += row[(cc*k+ky)*k+kx]
						}
					}
				}
			}
		}
	}
}
