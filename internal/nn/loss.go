package nn

import (
	"fmt"
	"math"

	"fedfteds/internal/tensor"
)

// SoftmaxCrossEntropy is the categorical cross-entropy loss on logits with an
// optional softmax temperature. Temperature 1 is the standard training loss;
// the entropy-based data selector uses Softmax directly with ρ < 1 instead.
type SoftmaxCrossEntropy struct {
	// Temperature scales logits as z/ρ before the softmax. Zero means 1.
	Temperature float64
}

// LossScratch holds the reusable buffers of the cross-entropy computation so
// the training hot loop allocates nothing per step. The zero value is ready
// to use; a scratch belongs to one training loop (not safe for concurrent
// use). The gradient tensor returned through a scratch is a workspace valid
// until the scratch's next use.
type LossScratch struct {
	dlogits      *tensor.Tensor
	scaled, logp []float32
}

// Loss returns the mean cross-entropy over the batch and the gradient of
// that mean with respect to the logits. The returned gradient is freshly
// allocated; hot loops use LossInto with a LossScratch instead.
//
// logits has shape (N, C) and labels has length N with values in [0, C).
func (l SoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	return l.LossInto(&LossScratch{}, logits, labels)
}

// LossInto is Loss computing into ws's reused buffers.
func (l SoftmaxCrossEntropy) LossInto(ws *LossScratch, logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	if logits.Rank() != 2 {
		return 0, nil, fmt.Errorf("nn: cross-entropy: logits rank %d, want 2", logits.Rank())
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return 0, nil, fmt.Errorf("nn: cross-entropy: %d labels for batch %d", len(labels), n)
	}
	rho := l.Temperature
	if rho == 0 {
		rho = 1
	}
	if rho <= 0 {
		return 0, nil, fmt.Errorf("nn: cross-entropy: temperature %v must be positive", rho)
	}
	ws.dlogits = tensor.Ensure(ws.dlogits, n, c)
	dlogits := ws.dlogits
	if cap(ws.scaled) < c {
		ws.scaled = make([]float32, c)
		ws.logp = make([]float32, c)
	}
	var total float64
	scaled := ws.scaled[:c]
	logp := ws.logp[:c]
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= c {
			return 0, nil, fmt.Errorf("nn: cross-entropy: label %d outside [0,%d)", y, c)
		}
		row := logits.Data()[i*c : (i+1)*c]
		for j, v := range row {
			scaled[j] = float32(float64(v) / rho)
		}
		LogSoftmaxRow(logp, scaled)
		total -= float64(logp[y])
		drow := dlogits.Data()[i*c : (i+1)*c]
		invNRho := 1.0 / (float64(n) * rho)
		for j := range drow {
			p := math.Exp(float64(logp[j]))
			ind := 0.0
			if j == y {
				ind = 1.0
			}
			drow[j] = float32((p - ind) * invNRho)
		}
	}
	return total / float64(n), dlogits, nil
}

// Value returns only the mean loss, without allocating gradients.
func (l SoftmaxCrossEntropy) Value(logits *tensor.Tensor, labels []int) (float64, error) {
	if logits.Rank() != 2 {
		return 0, fmt.Errorf("nn: cross-entropy: logits rank %d, want 2", logits.Rank())
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return 0, fmt.Errorf("nn: cross-entropy: %d labels for batch %d", len(labels), n)
	}
	rho := l.Temperature
	if rho == 0 {
		rho = 1
	}
	var total float64
	scaled := make([]float32, c)
	logp := make([]float32, c)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= c {
			return 0, fmt.Errorf("nn: cross-entropy: label %d outside [0,%d)", y, c)
		}
		row := logits.Data()[i*c : (i+1)*c]
		for j, v := range row {
			scaled[j] = float32(float64(v) / rho)
		}
		LogSoftmaxRow(logp, scaled)
		total -= float64(logp[y])
	}
	return total / float64(n), nil
}

// ShannonEntropyRows returns the Shannon entropy (natural log) of each row of
// a row-stochastic matrix such as a Softmax output. Zero probabilities
// contribute zero, matching the limit p·log p → 0.
func ShannonEntropyRows(probs *tensor.Tensor) []float64 {
	if probs.Rank() != 2 {
		panic(shapeErr("entropy", "rank 2", probs.Shape()))
	}
	n, c := probs.Dim(0), probs.Dim(1)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		row := probs.Data()[i*c : (i+1)*c]
		var h float64
		for _, p := range row {
			if p > 0 {
				fp := float64(p)
				h -= fp * math.Log(fp)
			}
		}
		out[i] = h
	}
	return out
}
