package nn

import (
	"math"

	"fedfteds/internal/tensor"
)

// ReLU is the rectified linear activation, applied element-wise.
type ReLU struct {
	base
	mask []bool // true where input > 0, cached for backward

	// Cached workspaces, reused across steps (see the package aliasing rule).
	y, dx *tensor.Tensor
	shape []int
}

var _ Layer = (*ReLU)(nil)

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU {
	return &ReLU{base: base{name: name}}
}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.shape = captureShape(r.shape, x)
	r.y = tensor.Ensure(r.y, r.shape...)
	xd, yd := x.Data(), r.y.Data()
	if train {
		if cap(r.mask) < len(yd) {
			r.mask = make([]bool, len(yd))
		}
		r.mask = r.mask[:len(yd)]
		for i, v := range xd {
			if v > 0 {
				r.mask[i] = true
				yd[i] = v
			} else {
				r.mask[i] = false
				yd[i] = 0
			}
		}
	} else {
		for i, v := range xd {
			if v < 0 {
				yd[i] = 0
			} else {
				yd[i] = v
			}
		}
	}
	return r.y
}

// Backward implements Layer.
func (r *ReLU) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if !needDx {
		return nil
	}
	if len(r.mask) != dy.Len() {
		panic("nn: relu " + r.name + ": Backward without train Forward")
	}
	r.dx = tensor.Ensure(r.dx, r.shape...)
	dyd, dxd := dy.Data(), r.dx.Data()
	for i, v := range dyd {
		if r.mask[i] {
			dxd[i] = v
		} else {
			dxd[i] = 0
		}
	}
	return r.dx
}

// OutputShape implements Layer.
func (r *ReLU) OutputShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// FLOPsPerSample implements Layer.
func (r *ReLU) FLOPsPerSample(in []int) int64 { return int64(tensor.Volume(in)) }

// Softmax computes the temperature-scaled softmax of each row of logits
// (N, C) into a new tensor: p_j = exp(z_j/ρ) / Σ_k exp(z_k/ρ).
//
// Temperature ρ < 1 "hardens" the distribution (paper Eq. 6); ρ > 1 softens
// it as in knowledge distillation. ρ must be positive.
func Softmax(logits *tensor.Tensor, temperature float64) *tensor.Tensor {
	if logits.Rank() != 2 {
		panic(shapeErr("softmax", "rank 2", logits.Shape()))
	}
	if temperature <= 0 {
		panic("nn: softmax temperature must be positive")
	}
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	for i := 0; i < n; i++ {
		row := logits.Data()[i*c : (i+1)*c]
		dst := out.Data()[i*c : (i+1)*c]
		softmaxRow(dst, row, temperature)
	}
	return out
}

// softmaxRow writes the numerically stable temperature softmax of src into
// dst.
func softmaxRow(dst, src []float32, temperature float64) {
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(float64(v-maxv) / temperature)
		dst[j] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}

// LogSoftmaxRow writes the numerically stable log-softmax of src into dst
// (temperature 1).
func LogSoftmaxRow(dst, src []float32) {
	maxv := src[0]
	for _, v := range src[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for _, v := range src {
		sum += math.Exp(float64(v - maxv))
	}
	lse := float32(math.Log(sum)) + maxv
	for j, v := range src {
		dst[j] = v - lse
	}
}
