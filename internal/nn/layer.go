// Package nn implements a layer-based neural-network substrate with explicit
// forward and backward passes: dense and convolutional layers, batch
// normalization, activations, pooling, dropout, a temperature-scaled softmax
// cross-entropy loss, and a Sequential container with per-layer freezing and
// FLOP accounting.
//
// Design notes:
//
//   - Layers cache activations between Forward and Backward; a layer instance
//     is NOT safe for concurrent use. In the federated simulator every client
//     trains on its own clone (or pooled replica) of the model.
//   - Aliasing rule: tensors returned by Forward and Backward are workspaces
//     owned by the layer, reused across calls. A returned tensor is valid
//     until the layer's next Forward/Backward call; callers that need the
//     values longer must Clone them. Layers never mutate their inputs, so an
//     upstream layer's output may be cached by reference until that upstream
//     layer runs again. This is what makes the steady-state training loop
//     allocation-free.
//   - Shape violations inside Forward/Backward are programmer errors and
//     panic; constructors and container builders return errors.
//   - Freezing a layer makes it behave as in evaluation mode (fixed batch-norm
//     statistics, no dropout), skip its parameter gradients, and lets the
//     Sequential container stop backpropagation below the lowest trainable
//     layer — this is what makes the paper's partial fine-tuning cheap.
package nn

import (
	"fmt"

	"fedfteds/internal/tensor"
)

// Param is a trainable tensor together with its gradient accumulator.
type Param struct {
	// Name identifies the parameter within its layer, e.g. "weight", "bias".
	Name string
	// W holds the parameter values.
	W *tensor.Tensor
	// G accumulates the gradient of the loss with respect to W. It has the
	// same shape as W and is owned by the layer.
	G *tensor.Tensor
	// NoDecay marks parameters exempt from weight decay (biases, batch-norm
	// scale/shift).
	NoDecay bool
}

// newParam allocates a parameter and its zeroed gradient.
func newParam(name string, w *tensor.Tensor, noDecay bool) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape()...), NoDecay: noDecay}
}

// Layer is a differentiable module with explicit forward and backward passes.
type Layer interface {
	// Name returns the layer's human-readable identifier.
	Name() string
	// Forward computes the layer output for a batch-first input. When train
	// is true, the layer caches whatever it needs for Backward and updates
	// training-time state (batch-norm statistics, dropout masks) unless it is
	// frozen.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient with respect to the layer output,
	// accumulates parameter gradients (unless frozen), and, when needDx is
	// true, returns the gradient with respect to the layer input. When needDx
	// is false the return value may be nil.
	Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor
	// Params returns the layer's trainable parameters (empty for stateless
	// layers). The slice and its contents are owned by the layer.
	Params() []*Param
	// Buffers returns non-trainable state that must travel with the model,
	// such as batch-norm running statistics.
	Buffers() []*tensor.Tensor
	// SetFrozen toggles the frozen state (see package doc).
	SetFrozen(bool)
	// Frozen reports whether the layer is frozen.
	Frozen() bool
	// OutputShape returns the per-sample output shape for a per-sample input
	// shape (excluding the batch dimension).
	OutputShape(in []int) ([]int, error)
	// FLOPsPerSample estimates the forward floating-point operations for one
	// sample with the given per-sample input shape. Backward cost is modeled
	// by the simtime package as a multiple of this.
	FLOPsPerSample(in []int) int64
}

// base provides the shared Name/Frozen plumbing for layer implementations.
type base struct {
	name   string
	frozen bool
}

func (b *base) Name() string              { return b.name }
func (b *base) SetFrozen(f bool)          { b.frozen = f }
func (b *base) Frozen() bool              { return b.frozen }
func (b *base) Buffers() []*tensor.Tensor { return nil }
func (b *base) Params() []*Param          { return nil }

// shapeErr builds the panic message for an invalid runtime shape.
func shapeErr(layer string, want, got interface{}) string {
	return fmt.Sprintf("nn: %s: want %v, got %v", layer, want, got)
}

// captureShape copies t's dimensions into dst, reusing dst's storage. Unlike
// Tensor.Shape it does not allocate in steady state, which keeps the layer
// caches allocation-free.
func captureShape(dst []int, t *tensor.Tensor) []int {
	r := t.Rank()
	if cap(dst) < r {
		dst = make([]int, r)
	}
	dst = dst[:r]
	for i := range dst {
		dst[i] = t.Dim(i)
	}
	return dst
}
