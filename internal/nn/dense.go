package nn

import (
	"fmt"
	"math/rand"

	"fedfteds/internal/tensor"
)

// Dense is a fully connected layer computing y = x Wᵀ + b for x of shape
// (N, in) and W of shape (out, in).
type Dense struct {
	base
	in, out int
	weight  *Param
	bias    *Param

	x *tensor.Tensor // cached input for backward (owned by the upstream layer)

	// Cached workspaces, reused across steps (see the package aliasing rule).
	y, dw, db, dx *tensor.Tensor
}

var _ Layer = (*Dense)(nil)

// NewDense constructs a dense layer with He-normal weight initialization and
// zero bias.
func NewDense(name string, in, out int, rng *rand.Rand) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: dense %q: invalid dims in=%d out=%d", name, in, out)
	}
	w := tensor.New(out, in)
	w.FillKaiming(rng, in)
	b := tensor.New(out)
	return &Dense{
		base:   base{name: name},
		in:     in,
		out:    out,
		weight: newParam("weight", w, false),
		bias:   newParam("bias", b, true),
	}, nil
}

// InFeatures returns the input width.
func (d *Dense) InFeatures() int { return d.in }

// OutFeatures returns the output width.
func (d *Dense) OutFeatures() int { return d.out }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.in {
		panic(shapeErr("dense "+d.name, []int{-1, d.in}, x.Shape()))
	}
	n := x.Dim(0)
	d.y = tensor.Ensure(d.y, n, d.out)
	if err := tensor.MatMulTransB(d.y, x, d.weight.W); err != nil {
		panic(err)
	}
	if err := d.y.AddRowVector(d.bias.W); err != nil {
		panic(err)
	}
	if train && !d.frozen {
		d.x = x
	} else {
		d.x = nil
	}
	return d.y
}

// Backward implements Layer.
func (d *Dense) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if dy.Rank() != 2 || dy.Dim(1) != d.out {
		panic(shapeErr("dense "+d.name+" backward", []int{-1, d.out}, dy.Shape()))
	}
	if !d.frozen {
		if d.x == nil {
			panic("nn: dense " + d.name + ": Backward without train Forward")
		}
		// dW += dyᵀ x ; db += column sums of dy.
		d.dw = tensor.Ensure(d.dw, d.out, d.in)
		if err := tensor.MatMulTransA(d.dw, dy, d.x); err != nil {
			panic(err)
		}
		if err := d.weight.G.Add(d.dw); err != nil {
			panic(err)
		}
		d.db = tensor.Ensure(d.db, d.out)
		if err := dy.SumRows(d.db); err != nil {
			panic(err)
		}
		if err := d.bias.G.Add(d.db); err != nil {
			panic(err)
		}
	}
	if !needDx {
		return nil
	}
	d.dx = tensor.Ensure(d.dx, dy.Dim(0), d.in)
	if err := tensor.MatMul(d.dx, dy, d.weight.W); err != nil {
		panic(err)
	}
	return d.dx
}

// OutputShape implements Layer.
func (d *Dense) OutputShape(in []int) ([]int, error) {
	if len(in) != 1 || in[0] != d.in {
		return nil, fmt.Errorf("nn: dense %q: input shape %v, want [%d]", d.name, in, d.in)
	}
	return []int{d.out}, nil
}

// FLOPsPerSample implements Layer: one multiply-add per weight.
func (d *Dense) FLOPsPerSample(in []int) int64 {
	return 2 * int64(d.in) * int64(d.out)
}
