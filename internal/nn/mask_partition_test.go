package nn

import (
	"math/rand"
	"testing"
)

// buildNestedNet constructs a WRN-shaped container tree: sequentials holding
// residual blocks (with and without projection shortcuts) over dense and
// batch-norm leaves, so freeze masks exercise the recursive
// layerFullyFrozen/TrainableParams/FrozenParams logic on every container
// kind.
func buildNestedNet(t *testing.T, rng *rand.Rand) *Sequential {
	t.Helper()
	dense := func(name string, in, out int) *Dense {
		d, err := NewDense(name, in, out, rng)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	bn := func(name string, ch int) *BatchNorm {
		b, err := NewBatchNorm(name, ch)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	// Residual with a projection shortcut (both branches hold params).
	res1 := NewResidual("res1",
		NewSequential("res1.body", dense("res1.d1", 8, 8), NewReLU("res1.relu"), dense("res1.d2", 8, 8)),
		NewSequential("res1.sc", dense("res1.proj", 8, 8)),
	)
	// Residual with identity shortcut, nested one level deeper.
	res2 := NewResidual("res2",
		NewSequential("res2.body",
			NewSequential("res2.inner", dense("res2.d1", 8, 8), bn("res2.bn", 8)),
			NewReLU("res2.relu"),
		),
		nil,
	)
	return NewSequential("net",
		dense("stem", 8, 8),
		NewSequential("stage", res1, res2),
		bn("headbn", 8),
		dense("head", 8, 4),
	)
}

// leafLayers collects the net's parameterized leaves so the test can apply
// arbitrary per-leaf freeze masks.
func leafLayers(net *Sequential) []Layer {
	var leaves []Layer
	net.VisitLayers(func(l Layer) {
		if len(l.Params()) > 0 {
			leaves = append(leaves, l)
		}
	})
	return leaves
}

// TestMaskPartitionsParams property-tests that for ANY freeze mask over the
// nested WRN/Residual structure, TrainableParams and FrozenParams exactly
// partition Params: every parameter tensor appears in precisely one of the
// two sets, none duplicated, none lost. This pins the container edge cases
// around layerFullyFrozen (e.g. a residual whose body is frozen but whose
// projection shortcut is not).
func TestMaskPartitionsParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := buildNestedNet(t, rng)
	leaves := leafLayers(net)
	if len(leaves) < 6 {
		t.Fatalf("expected a parameterized nested net, got %d leaves", len(leaves))
	}
	all := net.Params()
	if len(all) == 0 {
		t.Fatal("net has no params")
	}

	checkMask := func(mask uint) {
		for i, l := range leaves {
			l.SetFrozen(mask&(1<<uint(i)) != 0)
		}
		trainable := net.TrainableParams()
		frozen := net.FrozenParams()
		if len(trainable)+len(frozen) != len(all) {
			t.Fatalf("mask %b: %d trainable + %d frozen != %d total",
				mask, len(trainable), len(frozen), len(all))
		}
		seen := make(map[*Param]string, len(all))
		for _, p := range trainable {
			seen[p] = "trainable"
		}
		for _, p := range frozen {
			if where, dup := seen[p]; dup {
				t.Fatalf("mask %b: param %q in both %s and frozen", mask, p.Name, where)
			}
			seen[p] = "frozen"
		}
		for _, p := range all {
			if _, ok := seen[p]; !ok {
				t.Fatalf("mask %b: param %q lost from the partition", mask, p.Name)
			}
		}
		// The frozen set must agree with each leaf's own state.
		for i, l := range leaves {
			wantFrozen := mask&(1<<uint(i)) != 0
			for _, p := range l.Params() {
				if got := seen[p] == "frozen"; got != wantFrozen {
					t.Fatalf("mask %b: leaf %q param %q classified %s", mask, l.Name(), p.Name, seen[p])
				}
			}
		}
	}

	// Exhaustive over all leaf masks (2^n, n is small by construction).
	if len(leaves) <= 12 {
		for mask := uint(0); mask < 1<<uint(len(leaves)); mask++ {
			checkMask(mask)
		}
		return
	}
	for trial := 0; trial < 4096; trial++ {
		checkMask(uint(rng.Intn(1 << uint(len(leaves)))))
	}
}

// TestMaskPartitionContainerFreeze applies masks through container-level
// SetFrozen (the path models.SetTrainableGroups uses) and re-checks the
// partition plus the Frozen() aggregate on mixed containers.
func TestMaskPartitionContainerFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := buildNestedNet(t, rng)
	all := net.Params()

	stage := net.Layers()[1].(*Sequential)
	res1 := stage.Layers()[0].(*Residual)

	// Freeze the whole stage, then thaw only res1's projection shortcut:
	// res1 is now mixed, so it must not be "fully frozen".
	net.SetFrozen(false)
	stage.SetFrozen(true)
	res1.shortcut.SetFrozen(false)

	if layerFullyFrozen(res1) {
		t.Fatal("residual with trainable shortcut reported fully frozen")
	}
	if res1.Frozen() {
		t.Fatal("mixed residual reported Frozen")
	}
	trainable := net.TrainableParams()
	frozen := net.FrozenParams()
	if len(trainable)+len(frozen) != len(all) {
		t.Fatalf("%d trainable + %d frozen != %d total", len(trainable), len(frozen), len(all))
	}
	foundProj := false
	for _, p := range trainable {
		for _, sp := range res1.shortcut.Params() {
			if p == sp {
				foundProj = true
			}
		}
	}
	if !foundProj {
		t.Fatal("thawed projection shortcut missing from TrainableParams")
	}
	// Every res1 body param must be frozen.
	for _, bp := range res1.body.Params() {
		inFrozen := false
		for _, p := range frozen {
			if p == bp {
				inFrozen = true
			}
		}
		if !inFrozen {
			t.Fatalf("frozen body param %q escaped FrozenParams", bp.Name)
		}
	}
}
