package nn

import (
	"fmt"
	"math"

	"fedfteds/internal/tensor"
)

// BatchNorm normalizes activations per channel. It accepts rank-2 inputs
// (N, C), normalizing over the batch, and rank-4 inputs (N, C, H, W),
// normalizing over batch and spatial dimensions.
//
// In training mode (and not frozen) it normalizes with batch statistics and
// maintains exponential running statistics; in evaluation mode or when frozen
// it normalizes with the running statistics. Running statistics are exposed
// as Buffers so they travel with the model between server and clients.
type BatchNorm struct {
	base
	channels int
	eps      float64
	momentum float64

	gamma *Param
	beta  *Param

	runMean *tensor.Tensor
	runVar  *tensor.Tensor

	// Cached state from the last training-mode forward.
	xhat    *tensor.Tensor
	invStd  []float64
	inShape []int
	// evalBackward marks that the last training forward normalized with
	// running statistics (degenerate batch of one): Backward then uses the
	// decoupled gradient dx = dy·γ·invStd instead of the batch-stat formula.
	evalBackward bool

	// Cached workspaces, reused across steps (see the package aliasing rule).
	y, dx          *tensor.Tensor
	mean, variance []float64
	dgamma, dbeta  []float64
}

var _ Layer = (*BatchNorm)(nil)

// NewBatchNorm constructs a batch-norm layer over the given channel count
// with scale initialized to one, shift to zero, eps 1e-5 and running-stat
// momentum 0.1.
func NewBatchNorm(name string, channels int) (*BatchNorm, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("nn: batchnorm %q: invalid channels %d", name, channels)
	}
	g := tensor.New(channels)
	g.Fill(1)
	rv := tensor.New(channels)
	rv.Fill(1)
	return &BatchNorm{
		base:     base{name: name},
		channels: channels,
		eps:      1e-5,
		momentum: 0.1,
		gamma:    newParam("gamma", g, true),
		beta:     newParam("beta", tensor.New(channels), true),
		runMean:  tensor.New(channels),
		runVar:   rv,
	}, nil
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.gamma, bn.beta} }

// Buffers implements Layer, exposing the running mean and variance.
func (bn *BatchNorm) Buffers() []*tensor.Tensor {
	return []*tensor.Tensor{bn.runMean, bn.runVar}
}

// geometry returns (n, spatial): the input has n samples of channels×spatial
// values; spatial is 1 for rank-2 inputs.
func (bn *BatchNorm) geometry(x *tensor.Tensor) (n, spatial int) {
	switch x.Rank() {
	case 2:
		if x.Dim(1) != bn.channels {
			panic(shapeErr("batchnorm "+bn.name, bn.channels, x.Shape()))
		}
		return x.Dim(0), 1
	case 4:
		if x.Dim(1) != bn.channels {
			panic(shapeErr("batchnorm "+bn.name, bn.channels, x.Shape()))
		}
		return x.Dim(0), x.Dim(2) * x.Dim(3)
	default:
		panic(shapeErr("batchnorm "+bn.name, "rank 2 or 4", x.Shape()))
	}
}

// ensureChannelBufs sizes the per-channel float64 scratch slices once.
func (bn *BatchNorm) ensureChannelBufs() {
	if bn.mean == nil {
		bn.mean = make([]float64, bn.channels)
		bn.variance = make([]float64, bn.channels)
		bn.invStd = make([]float64, bn.channels)
		bn.dgamma = make([]float64, bn.channels)
		bn.dbeta = make([]float64, bn.channels)
	}
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, spatial := bn.geometry(x)
	cc := bn.channels
	bn.ensureChannelBufs()
	bn.inShape = captureShape(bn.inShape, x)
	bn.y = tensor.Ensure(bn.y, bn.inShape...)
	xd, yd := x.Data(), bn.y.Data()
	gd, bd := bn.gamma.W.Data(), bn.beta.W.Data()
	useBatchStats := train && !bn.frozen && n*spatial > 1

	if useBatchStats {
		mean, variance := bn.mean, bn.variance
		for c := range mean {
			mean[c] = 0
			variance[c] = 0
		}
		// Two-pass statistics, accumulated per (sample, channel) run in
		// float64, matching the original closure-based implementation term
		// for term.
		for i := 0; i < n; i++ {
			for ch := 0; ch < cc; ch++ {
				off := (i*cc + ch) * spatial
				var s float64
				for _, v := range xd[off : off+spatial] {
					s += float64(v)
				}
				mean[ch] += s
			}
		}
		m := float64(n * spatial)
		for c := range mean {
			mean[c] /= m
		}
		for i := 0; i < n; i++ {
			for ch := 0; ch < cc; ch++ {
				off := (i*cc + ch) * spatial
				var s float64
				for _, v := range xd[off : off+spatial] {
					d := float64(v) - mean[ch]
					s += d * d
				}
				variance[ch] += s
			}
		}
		for c := range variance {
			variance[c] /= m
		}
		// Update running statistics.
		rm, rv := bn.runMean.Data(), bn.runVar.Data()
		for c := 0; c < cc; c++ {
			rm[c] = float32((1-bn.momentum)*float64(rm[c]) + bn.momentum*mean[c])
			rv[c] = float32((1-bn.momentum)*float64(rv[c]) + bn.momentum*variance[c])
		}
		invStd := bn.invStd
		for c := range invStd {
			invStd[c] = 1.0 / math.Sqrt(variance[c]+bn.eps)
		}
		bn.xhat = tensor.Ensure(bn.xhat, bn.inShape...)
		xh := bn.xhat.Data()
		for i := 0; i < n; i++ {
			for ch := 0; ch < cc; ch++ {
				off := (i*cc + ch) * spatial
				mu, is := mean[ch], invStd[ch]
				for s := off; s < off+spatial; s++ {
					xh[s] = float32((float64(xd[s]) - mu) * is)
				}
			}
		}
		for i := 0; i < n; i++ {
			for ch := 0; ch < cc; ch++ {
				off := (i*cc + ch) * spatial
				g, b := gd[ch], bd[ch]
				for s := off; s < off+spatial; s++ {
					yd[s] = g*xh[s] + b
				}
			}
		}
		bn.evalBackward = false
		return bn.y
	}

	// Evaluation / frozen path: use running statistics. A training-mode call
	// lands here only for a degenerate batch (one value per channel), where
	// batch statistics are undefined; it keeps a cache so Backward works.
	invStd := bn.invStd
	rv := bn.runVar.Data()
	for c := range invStd {
		// Aggregation noise (lossy uplink codecs, federated averaging of
		// freshly restored buffers) can push a running variance slightly
		// negative; clamping keeps invStd finite instead of poisoning every
		// downstream activation with NaN. Locally computed variances are
		// non-negative, so this never changes a lossless run.
		invStd[c] = 1.0 / math.Sqrt(math.Max(float64(rv[c]), 0)+bn.eps)
	}
	trainDegenerate := train && !bn.frozen
	rm := bn.runMean.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < cc; ch++ {
			off := (i*cc + ch) * spatial
			mu, is := float64(rm[ch]), invStd[ch]
			g, b := float64(gd[ch]), float64(bd[ch])
			for s := off; s < off+spatial; s++ {
				xh := (float64(xd[s]) - mu) * is
				yd[s] = float32(g*xh + b)
			}
		}
	}
	if trainDegenerate {
		bn.xhat = tensor.Ensure(bn.xhat, bn.inShape...)
		xh := bn.xhat.Data()
		for i := 0; i < n; i++ {
			for ch := 0; ch < cc; ch++ {
				off := (i*cc + ch) * spatial
				mu, is := float64(rm[ch]), invStd[ch]
				for s := off; s < off+spatial; s++ {
					xh[s] = float32((float64(xd[s]) - mu) * is)
				}
			}
		}
	} else {
		bn.xhat = nil
	}
	bn.evalBackward = true
	return bn.y
}

// Backward implements Layer.
func (bn *BatchNorm) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	n, spatial := bn.geometry(dy)
	cc := bn.channels
	m := float64(n * spatial)
	dyd := dy.Data()
	gd := bn.gamma.W.Data()

	if bn.xhat == nil || bn.evalBackward {
		if bn.invStd == nil {
			panic("nn: batchnorm " + bn.name + ": Backward without Forward")
		}
		// Running-statistics normalization: the statistics do not depend on
		// the batch, so dx decouples to dy·γ·invStd; dγ/dβ accumulate from
		// the cached xhat when the layer is trainable.
		if !bn.frozen && bn.xhat != nil {
			dgamma, dbeta := bn.dgamma, bn.dbeta
			for c := range dgamma {
				dgamma[c] = 0
				dbeta[c] = 0
			}
			xh := bn.xhat.Data()
			for i := 0; i < n; i++ {
				for ch := 0; ch < cc; ch++ {
					off := (i*cc + ch) * spatial
					for s := off; s < off+spatial; s++ {
						dgamma[ch] += float64(dyd[s]) * float64(xh[s])
						dbeta[ch] += float64(dyd[s])
					}
				}
			}
			gg, bg := bn.gamma.G.Data(), bn.beta.G.Data()
			for c := 0; c < cc; c++ {
				gg[c] += float32(dgamma[c])
				bg[c] += float32(dbeta[c])
			}
		}
		if !needDx {
			return nil
		}
		bn.dx = tensor.Ensure(bn.dx, bn.inShape...)
		dxd := bn.dx.Data()
		for i := 0; i < n; i++ {
			for ch := 0; ch < cc; ch++ {
				off := (i*cc + ch) * spatial
				g, is := float64(gd[ch]), bn.invStd[ch]
				for s := off; s < off+spatial; s++ {
					// Left-to-right as in the original formula dy·γ·invStd.
					dxd[s] = float32(float64(dyd[s]) * g * is)
				}
			}
		}
		return bn.dx
	}

	// dgamma_c = Σ dy*xhat ; dbeta_c = Σ dy (over batch+spatial).
	dgamma, dbeta := bn.dgamma, bn.dbeta
	for c := range dgamma {
		dgamma[c] = 0
		dbeta[c] = 0
	}
	xh := bn.xhat.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < cc; ch++ {
			off := (i*cc + ch) * spatial
			for s := off; s < off+spatial; s++ {
				dgamma[ch] += float64(dyd[s]) * float64(xh[s])
				dbeta[ch] += float64(dyd[s])
			}
		}
	}
	if !bn.frozen {
		gg, bg := bn.gamma.G.Data(), bn.beta.G.Data()
		for c := 0; c < cc; c++ {
			gg[c] += float32(dgamma[c])
			bg[c] += float32(dbeta[c])
		}
	}
	if !needDx {
		return nil
	}
	// dx = gamma*invStd/m * (m*dy - dbeta - xhat*dgamma)
	bn.dx = tensor.Ensure(bn.dx, bn.inShape...)
	dxd := bn.dx.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < cc; ch++ {
			off := (i*cc + ch) * spatial
			g := float64(gd[ch]) * bn.invStd[ch] / m
			dg, db := dgamma[ch], dbeta[ch]
			for s := off; s < off+spatial; s++ {
				dxd[s] = float32(g * (m*float64(dyd[s]) - db - float64(xh[s])*dg))
			}
		}
	}
	return bn.dx
}

// OutputShape implements Layer.
func (bn *BatchNorm) OutputShape(in []int) ([]int, error) {
	if len(in) != 1 && len(in) != 3 {
		return nil, fmt.Errorf("nn: batchnorm %q: per-sample shape %v", bn.name, in)
	}
	if in[0] != bn.channels {
		return nil, fmt.Errorf("nn: batchnorm %q: channels %d, want %d", bn.name, in[0], bn.channels)
	}
	return append([]int(nil), in...), nil
}

// FLOPsPerSample implements Layer.
func (bn *BatchNorm) FLOPsPerSample(in []int) int64 {
	return 4 * int64(tensor.Volume(in))
}
