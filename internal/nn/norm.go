package nn

import (
	"fmt"
	"math"

	"fedfteds/internal/tensor"
)

// BatchNorm normalizes activations per channel. It accepts rank-2 inputs
// (N, C), normalizing over the batch, and rank-4 inputs (N, C, H, W),
// normalizing over batch and spatial dimensions.
//
// In training mode (and not frozen) it normalizes with batch statistics and
// maintains exponential running statistics; in evaluation mode or when frozen
// it normalizes with the running statistics. Running statistics are exposed
// as Buffers so they travel with the model between server and clients.
type BatchNorm struct {
	base
	channels int
	eps      float64
	momentum float64

	gamma *Param
	beta  *Param

	runMean *tensor.Tensor
	runVar  *tensor.Tensor

	// Cached state from the last training-mode forward.
	xhat    *tensor.Tensor
	invStd  []float64
	inShape []int
	// evalBackward marks that the last training forward normalized with
	// running statistics (degenerate batch of one): Backward then uses the
	// decoupled gradient dx = dy·γ·invStd instead of the batch-stat formula.
	evalBackward bool
}

var _ Layer = (*BatchNorm)(nil)

// NewBatchNorm constructs a batch-norm layer over the given channel count
// with scale initialized to one, shift to zero, eps 1e-5 and running-stat
// momentum 0.1.
func NewBatchNorm(name string, channels int) (*BatchNorm, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("nn: batchnorm %q: invalid channels %d", name, channels)
	}
	g := tensor.New(channels)
	g.Fill(1)
	rv := tensor.New(channels)
	rv.Fill(1)
	return &BatchNorm{
		base:     base{name: name},
		channels: channels,
		eps:      1e-5,
		momentum: 0.1,
		gamma:    newParam("gamma", g, true),
		beta:     newParam("beta", tensor.New(channels), true),
		runMean:  tensor.New(channels),
		runVar:   rv,
	}, nil
}

// Params implements Layer.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.gamma, bn.beta} }

// Buffers implements Layer, exposing the running mean and variance.
func (bn *BatchNorm) Buffers() []*tensor.Tensor {
	return []*tensor.Tensor{bn.runMean, bn.runVar}
}

// channelGeometry returns (groupSize, spatial) where input has N groups of
// channels×spatial values; spatial is 1 for rank-2 inputs.
func (bn *BatchNorm) channelGeometry(shape []int) (n, spatial int) {
	switch len(shape) {
	case 2:
		if shape[1] != bn.channels {
			panic(shapeErr("batchnorm "+bn.name, bn.channels, shape))
		}
		return shape[0], 1
	case 4:
		if shape[1] != bn.channels {
			panic(shapeErr("batchnorm "+bn.name, bn.channels, shape))
		}
		return shape[0], shape[2] * shape[3]
	default:
		panic(shapeErr("batchnorm "+bn.name, "rank 2 or 4", shape))
	}
}

// Forward implements Layer.
func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	n, spatial := bn.channelGeometry(shape)
	y := tensor.New(shape...)
	useBatchStats := train && !bn.frozen && n*spatial > 1

	if useBatchStats {
		mean := make([]float64, bn.channels)
		variance := make([]float64, bn.channels)
		bn.forEachChannel(x, shape, func(c int, vals []float32) {
			var s float64
			for _, v := range vals {
				s += float64(v)
			}
			mean[c] += s
		})
		m := float64(n * spatial)
		for c := range mean {
			mean[c] /= m
		}
		bn.forEachChannel(x, shape, func(c int, vals []float32) {
			var s float64
			for _, v := range vals {
				d := float64(v) - mean[c]
				s += d * d
			}
			variance[c] += s
		})
		for c := range variance {
			variance[c] /= m
		}
		// Update running statistics.
		for c := 0; c < bn.channels; c++ {
			rm := float64(bn.runMean.Data()[c])
			rv := float64(bn.runVar.Data()[c])
			bn.runMean.Data()[c] = float32((1-bn.momentum)*rm + bn.momentum*mean[c])
			bn.runVar.Data()[c] = float32((1-bn.momentum)*rv + bn.momentum*variance[c])
		}
		invStd := make([]float64, bn.channels)
		for c := range invStd {
			invStd[c] = 1.0 / math.Sqrt(variance[c]+bn.eps)
		}
		xhat := tensor.New(shape...)
		bn.mapChannels(x, xhat, shape, func(c int, v float32) float32 {
			return float32((float64(v) - mean[c]) * invStd[c])
		})
		bn.mapChannels(xhat, y, shape, func(c int, v float32) float32 {
			return bn.gamma.W.Data()[c]*v + bn.beta.W.Data()[c]
		})
		bn.xhat = xhat
		bn.invStd = invStd
		bn.inShape = shape
		bn.evalBackward = false
		return y
	}

	// Evaluation / frozen path: use running statistics. A training-mode call
	// lands here only for a degenerate batch (one value per channel), where
	// batch statistics are undefined; it keeps a cache so Backward works.
	invStd := make([]float64, bn.channels)
	for c := range invStd {
		invStd[c] = 1.0 / math.Sqrt(float64(bn.runVar.Data()[c])+bn.eps)
	}
	trainDegenerate := train && !bn.frozen
	var xhat *tensor.Tensor
	if trainDegenerate {
		xhat = tensor.New(shape...)
	}
	bn.mapChannels(x, y, shape, func(c int, v float32) float32 {
		xh := (float64(v) - float64(bn.runMean.Data()[c])) * invStd[c]
		return float32(float64(bn.gamma.W.Data()[c])*xh + float64(bn.beta.W.Data()[c]))
	})
	if trainDegenerate {
		bn.mapChannels(x, xhat, shape, func(c int, v float32) float32 {
			return float32((float64(v) - float64(bn.runMean.Data()[c])) * invStd[c])
		})
	}
	bn.xhat = xhat
	bn.invStd = invStd
	bn.inShape = shape
	bn.evalBackward = true
	return y
}

// Backward implements Layer.
func (bn *BatchNorm) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	shape := dy.Shape()
	n, spatial := bn.channelGeometry(shape)
	m := float64(n * spatial)

	if bn.xhat == nil || bn.evalBackward {
		if bn.invStd == nil {
			panic("nn: batchnorm " + bn.name + ": Backward without Forward")
		}
		// Running-statistics normalization: the statistics do not depend on
		// the batch, so dx decouples to dy·γ·invStd; dγ/dβ accumulate from
		// the cached xhat when the layer is trainable.
		if !bn.frozen && bn.xhat != nil {
			dgamma := make([]float64, bn.channels)
			dbeta := make([]float64, bn.channels)
			bn.forEachChannelPair(dy, bn.xhat, shape, func(c int, dv, xh float32) {
				dgamma[c] += float64(dv) * float64(xh)
				dbeta[c] += float64(dv)
			})
			for c := 0; c < bn.channels; c++ {
				bn.gamma.G.Data()[c] += float32(dgamma[c])
				bn.beta.G.Data()[c] += float32(dbeta[c])
			}
		}
		if !needDx {
			return nil
		}
		dx := tensor.New(shape...)
		bn.mapChannels(dy, dx, shape, func(c int, v float32) float32 {
			return float32(float64(v) * float64(bn.gamma.W.Data()[c]) * bn.invStd[c])
		})
		return dx
	}

	// dgamma_c = Σ dy*xhat ; dbeta_c = Σ dy (over batch+spatial).
	dgamma := make([]float64, bn.channels)
	dbeta := make([]float64, bn.channels)
	bn.forEachChannelPair(dy, bn.xhat, shape, func(c int, dv, xh float32) {
		dgamma[c] += float64(dv) * float64(xh)
		dbeta[c] += float64(dv)
	})
	if !bn.frozen {
		for c := 0; c < bn.channels; c++ {
			bn.gamma.G.Data()[c] += float32(dgamma[c])
			bn.beta.G.Data()[c] += float32(dbeta[c])
		}
	}
	if !needDx {
		return nil
	}
	// dx = gamma*invStd/m * (m*dy - dbeta - xhat*dgamma)
	dx := tensor.New(shape...)
	bn.mapChannelsPair(dy, bn.xhat, dx, shape, func(c int, dv, xh float32) float32 {
		g := float64(bn.gamma.W.Data()[c]) * bn.invStd[c] / m
		return float32(g * (m*float64(dv) - dbeta[c] - float64(xh)*dgamma[c]))
	})
	return dx
}

// forEachChannel calls f once per (sample, channel) with the contiguous
// spatial values of that channel.
func (bn *BatchNorm) forEachChannel(x *tensor.Tensor, shape []int, f func(c int, vals []float32)) {
	if len(shape) == 2 {
		n, c := shape[0], shape[1]
		d := x.Data()
		for i := 0; i < n; i++ {
			row := d[i*c : (i+1)*c]
			for ch := 0; ch < c; ch++ {
				f(ch, row[ch:ch+1])
			}
		}
		return
	}
	n, c, sp := shape[0], shape[1], shape[2]*shape[3]
	d := x.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			off := (i*c + ch) * sp
			f(ch, d[off:off+sp])
		}
	}
}

func (bn *BatchNorm) forEachChannelPair(a, b *tensor.Tensor, shape []int, f func(c int, av, bv float32)) {
	ad, bd := a.Data(), b.Data()
	if len(shape) == 2 {
		n, c := shape[0], shape[1]
		for i := 0; i < n; i++ {
			for ch := 0; ch < c; ch++ {
				off := i*c + ch
				f(ch, ad[off], bd[off])
			}
		}
		return
	}
	n, c, sp := shape[0], shape[1], shape[2]*shape[3]
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			off := (i*c + ch) * sp
			for s := 0; s < sp; s++ {
				f(ch, ad[off+s], bd[off+s])
			}
		}
	}
}

func (bn *BatchNorm) mapChannels(src, dst *tensor.Tensor, shape []int, f func(c int, v float32) float32) {
	sd, dd := src.Data(), dst.Data()
	if len(shape) == 2 {
		n, c := shape[0], shape[1]
		for i := 0; i < n; i++ {
			for ch := 0; ch < c; ch++ {
				off := i*c + ch
				dd[off] = f(ch, sd[off])
			}
		}
		return
	}
	n, c, sp := shape[0], shape[1], shape[2]*shape[3]
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			off := (i*c + ch) * sp
			for s := 0; s < sp; s++ {
				dd[off+s] = f(ch, sd[off+s])
			}
		}
	}
}

func (bn *BatchNorm) mapChannelsPair(a, b, dst *tensor.Tensor, shape []int, f func(c int, av, bv float32) float32) {
	ad, bd, dd := a.Data(), b.Data(), dst.Data()
	if len(shape) == 2 {
		n, c := shape[0], shape[1]
		for i := 0; i < n; i++ {
			for ch := 0; ch < c; ch++ {
				off := i*c + ch
				dd[off] = f(ch, ad[off], bd[off])
			}
		}
		return
	}
	n, c, sp := shape[0], shape[1], shape[2]*shape[3]
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			off := (i*c + ch) * sp
			for s := 0; s < sp; s++ {
				dd[off+s] = f(ch, ad[off+s], bd[off+s])
			}
		}
	}
}

// OutputShape implements Layer.
func (bn *BatchNorm) OutputShape(in []int) ([]int, error) {
	if len(in) != 1 && len(in) != 3 {
		return nil, fmt.Errorf("nn: batchnorm %q: per-sample shape %v", bn.name, in)
	}
	if in[0] != bn.channels {
		return nil, fmt.Errorf("nn: batchnorm %q: channels %d, want %d", bn.name, in[0], bn.channels)
	}
	return append([]int(nil), in...), nil
}

// FLOPsPerSample implements Layer.
func (bn *BatchNorm) FLOPsPerSample(in []int) int64 {
	return 4 * int64(tensor.Volume(in))
}
