package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedfteds/internal/tensor"
)

// gradCheck verifies analytic parameter gradients of model against central
// finite differences of the cross-entropy loss. It checks every parameter
// element for small models.
func gradCheck(t *testing.T, model *Sequential, x *tensor.Tensor, labels []int) {
	t.Helper()
	loss := SoftmaxCrossEntropy{}

	model.ZeroGrads()
	logits := model.Forward(x, true)
	_, dlogits, err := loss.Loss(logits, labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	model.Backward(dlogits, false)

	lossAt := func() float64 {
		out := model.Forward(x, true)
		v, err := loss.Value(out, labels)
		if err != nil {
			t.Fatalf("loss value: %v", err)
		}
		return v
	}

	const eps = 1e-2
	var checked, failed int
	for _, p := range model.Params() {
		for i := 0; i < p.W.Len(); i++ {
			orig := p.W.Data()[i]
			p.W.Data()[i] = orig + eps
			up := lossAt()
			p.W.Data()[i] = orig - eps
			down := lossAt()
			p.W.Data()[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := float64(p.G.Data()[i])
			diff := math.Abs(numeric - analytic)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			checked++
			if diff/scale > 5e-2 {
				failed++
				if failed <= 5 {
					t.Errorf("param %q[%d]: analytic %.6f vs numeric %.6f", p.Name, i, analytic, numeric)
				}
			}
		}
	}
	if failed > 0 {
		t.Fatalf("%d/%d gradient entries mismatched", failed, checked)
	}
}

func smallInput(t *testing.T, rng *rand.Rand, shape ...int) *tensor.Tensor {
	t.Helper()
	x := tensor.New(shape...)
	x.FillNormal(rng, 0, 1)
	return x
}

func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d1, err := NewDense("fc1", 5, 7, rng)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense("fc2", 7, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", d1, NewReLU("r1"), d2)
	x := smallInput(t, rng, 4, 5)
	gradCheck(t, model, x, []int{0, 2, 1, 0})
}

func TestGradCheckDenseBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d1, err := NewDense("fc1", 6, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBatchNorm("bn1", 8)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense("fc2", 8, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", d1, bn, NewReLU("r1"), d2)
	x := smallInput(t, rng, 6, 6)
	gradCheck(t, model, x, []int{0, 1, 2, 3, 0, 1})
}

func TestGradCheckConvNet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv, err := NewConv2D("c1", 2, 3, 3, ConvOpts{Stride: 1, Padding: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBatchNorm("bn1", 3)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewDense("fc", 3*6*6, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Max pool is checked separately (TestMaxPoolNumericDx): its argmax makes
	// the loss non-differentiable at ties, which breaks finite differences.
	model := NewSequential("net",
		conv, bn, NewReLU("r1"), NewFlatten("fl"), fc)
	x := smallInput(t, rng, 3, 2, 6, 6)
	gradCheck(t, model, x, []int{0, 1, 2})
}

func TestMaxPoolNumericDx(t *testing.T) {
	// Check dL/dx of a max pool at a point far from pooling ties.
	p, err := NewMaxPool2D("p", 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float32{
		0.1, 0.9, 0.2, 0.8,
		0.3, 0.4, 0.7, 0.6,
		0.5, 0.15, 0.25, 0.35,
		0.45, 0.55, 0.65, 0.75,
	}, 1, 1, 4, 4)
	// Loss = sum of squared outputs.
	lossOf := func(in *tensor.Tensor) float64 {
		y := p.Forward(in, true)
		var s float64
		for _, v := range y.Data() {
			s += float64(v) * float64(v)
		}
		return s
	}
	y := p.Forward(x, true)
	dy := y.Clone()
	dy.Scale(2)
	dx := p.Backward(dy, true)

	const eps = 1e-3
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		up := lossOf(x)
		x.Data()[i] = orig - eps
		down := lossOf(x)
		x.Data()[i] = orig
		numeric := (up - down) / (2 * eps)
		analytic := float64(dx.Data()[i])
		if math.Abs(numeric-analytic) > 1e-2 {
			t.Fatalf("maxpool dx[%d]: analytic %.5f numeric %.5f", i, analytic, numeric)
		}
	}
}

func TestGradCheckStridedConvNoBias(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv, err := NewConv2D("c1", 1, 2, 3, ConvOpts{Stride: 2, Padding: 1, NoBias: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewDense("fc", 2*3*3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", conv, NewReLU("r"), NewFlatten("fl"), fc)
	x := smallInput(t, rng, 2, 1, 5, 5)
	gradCheck(t, model, x, []int{0, 1})
}

func TestGradCheckResidualIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d1, err := NewDense("b1", 4, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	body := NewSequential("body", d1, NewReLU("br"))
	blk := NewResidual("res", body, nil)
	head, err := NewDense("head", 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", blk, head)
	x := smallInput(t, rng, 5, 4)
	gradCheck(t, model, x, []int{0, 1, 2, 0, 1})
}

func TestGradCheckResidualProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b1, err := NewDense("b1", 4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	body := NewSequential("body", b1, NewReLU("br"))
	sc, err := NewDense("sc", 4, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	shortcut := NewSequential("short", sc)
	blk := NewResidual("res", body, shortcut)
	head, err := NewDense("head", 6, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", blk, head)
	x := smallInput(t, rng, 4, 4)
	gradCheck(t, model, x, []int{0, 1, 0, 1})
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv, err := NewConv2D("c1", 1, 4, 3, ConvOpts{Padding: 1, NoBias: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewDense("fc", 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", conv, NewReLU("r"), NewGlobalAvgPool("gap"), fc)
	x := smallInput(t, rng, 3, 1, 4, 4)
	gradCheck(t, model, x, []int{2, 0, 1})
}

func TestGradCheckTemperatureLoss(t *testing.T) {
	// Gradient of the temperature-scaled loss should also match numerically.
	rng := rand.New(rand.NewSource(8))
	d, err := NewDense("fc", 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", d)
	x := smallInput(t, rng, 3, 4)
	labels := []int{0, 1, 2}
	loss := SoftmaxCrossEntropy{Temperature: 0.5}

	model.ZeroGrads()
	logits := model.Forward(x, true)
	_, dlogits, err := loss.Loss(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	model.Backward(dlogits, false)

	const eps = 1e-2
	p := model.Params()[0]
	for i := 0; i < p.W.Len(); i++ {
		orig := p.W.Data()[i]
		p.W.Data()[i] = orig + eps
		up, _ := loss.Value(model.Forward(x, true), labels)
		p.W.Data()[i] = orig - eps
		down, _ := loss.Value(model.Forward(x, true), labels)
		p.W.Data()[i] = orig
		numeric := (up - down) / (2 * eps)
		analytic := float64(p.G.Data()[i])
		if math.Abs(numeric-analytic) > 5e-2*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("temp loss grad[%d]: analytic %.5f numeric %.5f", i, analytic, numeric)
		}
	}
}
