package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedfteds/internal/tensor"
)

func TestDenseForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := NewDense("fc", 2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	// W = [[1,2],[3,4]], b = [10, 20]; y = x Wᵀ + b.
	copy(d.weight.W.Data(), []float32{1, 2, 3, 4})
	copy(d.bias.W.Data(), []float32{10, 20})
	x := tensor.MustFromSlice([]float32{1, 1}, 1, 2)
	y := d.Forward(x, false)
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Fatalf("Forward = %v, want [13 27]", y.Data())
	}
}

func TestDenseShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, err := NewDense("fc", 3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width")
		}
	}()
	d.Forward(tensor.New(1, 4), false)
}

func TestNewDenseRejectsBadDims(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDense("fc", 0, 2, rng); err == nil {
		t.Fatal("expected error for in=0")
	}
	if _, err := NewDense("fc", 2, -1, rng); err == nil {
		t.Fatal("expected error for out=-1")
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("r")
	x := tensor.MustFromSlice([]float32{-1, 0, 2}, 1, 3)
	y := r.Forward(x, true)
	if y.At(0, 0) != 0 || y.At(0, 1) != 0 || y.At(0, 2) != 2 {
		t.Fatalf("relu forward: %v", y.Data())
	}
	dy := tensor.MustFromSlice([]float32{5, 5, 5}, 1, 3)
	dx := r.Backward(dy, true)
	if dx.At(0, 0) != 0 || dx.At(0, 1) != 0 || dx.At(0, 2) != 5 {
		t.Fatalf("relu backward: %v", dx.Data())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.New(10, 7)
	logits.FillNormal(rng, 0, 3)
	for _, temp := range []float64{0.1, 0.5, 1.0, 2.0} {
		p := Softmax(logits, temp)
		for i := 0; i < 10; i++ {
			var s float64
			minv := float32(2)
			for _, v := range p.Row(i).Data() {
				s += float64(v)
				if v < minv {
					minv = v
				}
			}
			if math.Abs(s-1) > 1e-5 {
				t.Fatalf("temp %v row %d sums to %v", temp, i, s)
			}
			if minv < 0 {
				t.Fatalf("negative probability at temp %v", temp)
			}
		}
	}
}

func TestSoftmaxTemperatureHardens(t *testing.T) {
	// For a confident row, lowering the temperature must lower the entropy.
	logits := tensor.MustFromSlice([]float32{2, 1, 0.5, 0}, 1, 4)
	h := func(temp float64) float64 {
		return ShannonEntropyRows(Softmax(logits, temp))[0]
	}
	if !(h(0.1) < h(0.5) && h(0.5) < h(1.0) && h(1.0) < h(5.0)) {
		t.Fatalf("entropy not monotone in temperature: %v %v %v %v", h(0.1), h(0.5), h(1.0), h(5.0))
	}
}

func TestShannonEntropyBounds(t *testing.T) {
	// Uniform distribution maximizes entropy at log C; one-hot gives 0.
	c := 8
	uniform := tensor.New(1, c)
	uniform.Fill(float32(1.0 / float64(c)))
	h := ShannonEntropyRows(uniform)[0]
	if math.Abs(h-math.Log(float64(c))) > 1e-5 {
		t.Fatalf("uniform entropy %v, want %v", h, math.Log(float64(c)))
	}
	onehot := tensor.New(1, c)
	onehot.Set(1, 0, 0)
	if got := ShannonEntropyRows(onehot)[0]; got != 0 {
		t.Fatalf("one-hot entropy %v, want 0", got)
	}
}

func TestQuickEntropyWithinBounds(t *testing.T) {
	f := func(raw []float32) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		logits := make([]float32, len(raw))
		for i, v := range raw {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				v = 0
			}
			// Keep logits in a sane range.
			logits[i] = float32(math.Mod(float64(v), 20))
		}
		lt := tensor.MustFromSlice(logits, 1, len(logits))
		for _, temp := range []float64{0.1, 1.0, 3.0} {
			h := ShannonEntropyRows(Softmax(lt, temp))[0]
			if h < -1e-9 || h > math.Log(float64(len(logits)))+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchNormNormalizesTrainBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bn, err := NewBatchNorm("bn", 4)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(32, 4)
	x.FillNormal(rng, 5, 3)
	y := bn.Forward(x, true)
	// Each output channel should be ~zero-mean unit-variance.
	for c := 0; c < 4; c++ {
		var mean, sq float64
		for i := 0; i < 32; i++ {
			v := float64(y.At(i, c))
			mean += v
			sq += v * v
		}
		mean /= 32
		variance := sq/32 - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("channel %d mean %v", c, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d variance %v", c, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn, err := NewBatchNorm("bn", 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(64, 2)
	x.FillNormal(rng, 2, 1)
	// Several training passes to converge the running stats.
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	y := bn.Forward(x, false)
	var mean float64
	for i := 0; i < 64; i++ {
		mean += float64(y.At(i, 0))
	}
	mean /= 64
	if math.Abs(mean) > 0.1 {
		t.Fatalf("eval-mode mean %v, want ~0 after running-stat convergence", mean)
	}
}

func TestBatchNormFrozenIgnoresBatch(t *testing.T) {
	bn, err := NewBatchNorm("bn", 2)
	if err != nil {
		t.Fatal(err)
	}
	bn.SetFrozen(true)
	rm := bn.runMean.Clone()
	x := tensor.New(16, 2)
	x.Fill(7)
	bn.Forward(x, true)
	if !bn.runMean.Equal(rm) {
		t.Fatal("frozen batch norm updated running stats")
	}
}

func TestBatchNorm4DShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bn, err := NewBatchNorm("bn", 3)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 3, 4, 4)
	x.FillNormal(rng, 0, 1)
	y := bn.Forward(x, true)
	if got := y.Shape(); got[0] != 2 || got[1] != 3 || got[2] != 4 || got[3] != 4 {
		t.Fatalf("shape %v", got)
	}
}

func TestConvKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, err := NewConv2D("c", 1, 1, 2, ConvOpts{NoBias: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Kernel = [[1, 0], [0, 1]]: y = x[i,j] + x[i+1,j+1].
	copy(c.weight.W.Data(), []float32{1, 0, 0, 1})
	x := tensor.MustFromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y := c.Forward(x, false)
	want := []float32{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("conv[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
}

func TestConvOutputShapePadding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := NewConv2D("c", 3, 8, 3, ConvOpts{Stride: 2, Padding: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.OutputShape([]int{3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 8 || out[1] != 4 || out[2] != 4 {
		t.Fatalf("OutputShape = %v, want [8 4 4]", out)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p, err := NewMaxPool2D("p", 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 1, 4, 4)
	y := p.Forward(x, true)
	want := []float32{4, 8, 9, 4}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
	dy := tensor.MustFromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	dx := p.Backward(dy, true)
	// Gradient flows only to argmax positions.
	var nz int
	for _, v := range dx.Data() {
		if v != 0 {
			nz++
		}
	}
	if nz != 4 {
		t.Fatalf("pool backward: %d nonzero entries, want 4", nz)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	g := NewGlobalAvgPool("g")
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := g.Forward(x, true)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("gap = %v", y.Data())
	}
	dy := tensor.MustFromSlice([]float32{4, 8}, 1, 2)
	dx := g.Backward(dy, true)
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 1, 1, 1) != 2 {
		t.Fatalf("gap backward = %v", dx.Data())
	}
}

func TestDropoutTrainEval(t *testing.T) {
	d, err := NewDropout("do", 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 1000)
	x.Fill(1)
	y := d.Forward(x, true)
	var zeros int
	for _, v := range y.Data() {
		if v == 0 {
			zeros++
		} else if v != 2 {
			t.Fatalf("surviving element scaled to %v, want 2", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d of 1000, want ~500", zeros)
	}
	// Eval mode is identity.
	ye := d.Forward(x, false)
	if !ye.Equal(x) {
		t.Fatal("eval-mode dropout is not identity")
	}
	// Frozen in train mode is identity too.
	d.SetFrozen(true)
	yf := d.Forward(x, true)
	if !yf.Equal(x) {
		t.Fatal("frozen dropout is not identity")
	}
}

func TestNewDropoutRejectsBadRate(t *testing.T) {
	if _, err := NewDropout("do", 1.0, 1); err == nil {
		t.Fatal("expected error for rate 1.0")
	}
	if _, err := NewDropout("do", -0.1, 1); err == nil {
		t.Fatal("expected error for negative rate")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("fl")
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	dx := f.Backward(y, true)
	if dx.Rank() != 4 || dx.Dim(3) != 5 {
		t.Fatalf("flatten backward shape %v", dx.Shape())
	}
}

func TestSequentialFreezePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d1, err := NewDense("fc1", 4, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense("fc2", 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", d1, NewReLU("r"), d2)
	d1.SetFrozen(true)

	tp := model.TrainableParams()
	if len(tp) != 2 {
		t.Fatalf("TrainableParams = %d params, want 2 (fc2 weight+bias)", len(tp))
	}

	x := tensor.New(3, 4)
	x.FillNormal(rng, 0, 1)
	model.ZeroGrads()
	logits := model.Forward(x, true)
	_, dl, err := SoftmaxCrossEntropy{}.Loss(logits, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	model.Backward(dl, false)

	// Frozen layer accumulated no gradient.
	for _, p := range d1.Params() {
		if p.G.Norm2() != 0 {
			t.Fatalf("frozen param %q has gradient norm %v", p.Name, p.G.Norm2())
		}
	}
	// Trainable layer did.
	if model.Params()[2].G.Norm2() == 0 {
		t.Fatal("trainable layer has zero gradient")
	}
}

func TestSequentialOutputShapeAndFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	conv, err := NewConv2D("c", 3, 16, 3, ConvOpts{Padding: 1, NoBias: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBatchNorm("bn", 16)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := NewDense("fc", 16, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", conv, bn, NewReLU("r"), NewGlobalAvgPool("g"), fc)
	out, err := model.OutputShape([]int{3, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 10 {
		t.Fatalf("OutputShape = %v", out)
	}
	flops := model.FLOPsPerSample([]int{3, 8, 8})
	// Conv dominates: 2*3*9*16*64 = 55296; total must exceed it.
	if flops < 55296 {
		t.Fatalf("FLOPs = %d, want >= 55296", flops)
	}
}

func TestSequentialBuffersCollected(t *testing.T) {
	bn1, err := NewBatchNorm("bn1", 4)
	if err != nil {
		t.Fatal(err)
	}
	bn2, err := NewBatchNorm("bn2", 4)
	if err != nil {
		t.Fatal(err)
	}
	model := NewSequential("net", bn1, NewReLU("r"), bn2)
	if got := len(model.Buffers()); got != 4 {
		t.Fatalf("Buffers = %d, want 4 (2 BN × mean+var)", got)
	}
}

func TestCrossEntropyRejectsBadLabels(t *testing.T) {
	logits := tensor.New(2, 3)
	if _, _, err := (SoftmaxCrossEntropy{}).Loss(logits, []int{0, 5}); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
	if _, _, err := (SoftmaxCrossEntropy{}).Loss(logits, []int{0}); err == nil {
		t.Fatal("expected error for label count mismatch")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over C classes: loss = log C.
	logits := tensor.New(4, 5)
	v, err := SoftmaxCrossEntropy{}.Value(logits, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-math.Log(5)) > 1e-6 {
		t.Fatalf("uniform CE = %v, want log 5 = %v", v, math.Log(5))
	}
}

func TestResidualForwardIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d, err := NewDense("b", 3, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Zero body weights: residual output equals input.
	d.weight.W.Zero()
	d.bias.W.Zero()
	blk := NewResidual("res", NewSequential("body", d), nil)
	x := tensor.New(2, 3)
	x.FillNormal(rng, 0, 1)
	y := blk.Forward(x, false)
	if !y.AllClose(x, 1e-6) {
		t.Fatal("zero-body residual != identity")
	}
}
