package nn

import (
	"fmt"
	"math/rand"

	"fedfteds/internal/tensor"
)

// Flatten reshapes (N, ...) inputs to (N, prod(...)).
type Flatten struct {
	base
	inShape []int

	// Cached workspaces, reused across steps (see the package aliasing rule).
	y, dx *tensor.Tensor
}

var _ Layer = (*Flatten)(nil)

// NewFlatten constructs a flattening layer.
func NewFlatten(name string) *Flatten {
	return &Flatten{base: base{name: name}}
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() < 2 {
		panic(shapeErr("flatten "+f.name, "rank >= 2", x.Shape()))
	}
	n := x.Dim(0)
	rest := x.Len() / max(n, 1)
	if train {
		f.inShape = captureShape(f.inShape, x)
	}
	f.y = tensor.Ensure(f.y, n, rest)
	copy(f.y.Data(), x.Data())
	return f.y
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if !needDx {
		return nil
	}
	if f.inShape == nil {
		panic("nn: flatten " + f.name + ": Backward without train Forward")
	}
	f.dx = tensor.Ensure(f.dx, f.inShape...)
	copy(f.dx.Data(), dy.Data())
	return f.dx
}

// OutputShape implements Layer.
func (f *Flatten) OutputShape(in []int) ([]int, error) {
	return []int{tensor.Volume(in)}, nil
}

// FLOPsPerSample implements Layer.
func (f *Flatten) FLOPsPerSample(in []int) int64 { return 0 }

// Dropout is inverted dropout: in training mode it zeroes each element with
// probability Rate and scales survivors by 1/(1-Rate); in evaluation or when
// frozen it is the identity.
type Dropout struct {
	base
	rate float64
	seed int64
	rng  *rand.Rand
	mask []float32

	// Cached workspaces, reused across steps (see the package aliasing rule).
	y, dx *tensor.Tensor
	shape []int
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with the given drop rate in [0, 1).
// The layer owns a deterministic RNG derived from seed.
func NewDropout(name string, rate float64, seed int64) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout %q: rate %v outside [0,1)", name, rate)
	}
	return &Dropout{
		base: base{name: name},
		rate: rate,
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

// Reseed replaces the dropout RNG; used when cloning models so clones draw
// independent masks.
func (d *Dropout) Reseed(seed int64) {
	d.seed = seed
	d.rng = rand.New(rand.NewSource(seed))
}

// ResetRNG rewinds the dropout RNG to its seed, restoring the mask stream a
// freshly built layer would draw. Pooled model replicas call this between
// clients so reuse stays bit-identical to cloning.
func (d *Dropout) ResetRNG() { d.rng = rand.New(rand.NewSource(d.seed)) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.shape = captureShape(d.shape, x)
	d.y = tensor.Ensure(d.y, d.shape...)
	xd, yd := x.Data(), d.y.Data()
	if !train || d.frozen || d.rate == 0 {
		d.mask = nil
		copy(yd, xd)
		return d.y
	}
	if cap(d.mask) < len(yd) {
		d.mask = make([]float32, len(yd))
	}
	d.mask = d.mask[:len(yd)]
	keep := float32(1.0 / (1.0 - d.rate))
	for i, v := range xd {
		if d.rng.Float64() < d.rate {
			d.mask[i] = 0
			yd[i] = 0
		} else {
			d.mask[i] = keep
			yd[i] = v * keep
		}
	}
	return d.y
}

// Backward implements Layer.
func (d *Dropout) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if !needDx {
		return nil
	}
	d.dx = tensor.Ensure(d.dx, d.shape...)
	dyd, dxd := dy.Data(), d.dx.Data()
	if d.mask == nil {
		copy(dxd, dyd)
		return d.dx
	}
	for i, v := range dyd {
		dxd[i] = v * d.mask[i]
	}
	return d.dx
}

// OutputShape implements Layer.
func (d *Dropout) OutputShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// FLOPsPerSample implements Layer.
func (d *Dropout) FLOPsPerSample(in []int) int64 { return int64(tensor.Volume(in)) }
