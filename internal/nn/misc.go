package nn

import (
	"fmt"
	"math/rand"

	"fedfteds/internal/tensor"
)

// Flatten reshapes (N, ...) inputs to (N, prod(...)).
type Flatten struct {
	base
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten constructs a flattening layer.
func NewFlatten(name string) *Flatten {
	return &Flatten{base: base{name: name}}
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() < 2 {
		panic(shapeErr("flatten "+f.name, "rank >= 2", x.Shape()))
	}
	n := x.Dim(0)
	rest := x.Len() / max(n, 1)
	if train {
		f.inShape = x.Shape()
	}
	return x.Clone().MustReshape(n, rest)
}

// Backward implements Layer.
func (f *Flatten) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if !needDx {
		return nil
	}
	if f.inShape == nil {
		panic("nn: flatten " + f.name + ": Backward without train Forward")
	}
	return dy.Clone().MustReshape(f.inShape...)
}

// OutputShape implements Layer.
func (f *Flatten) OutputShape(in []int) ([]int, error) {
	return []int{tensor.Volume(in)}, nil
}

// FLOPsPerSample implements Layer.
func (f *Flatten) FLOPsPerSample(in []int) int64 { return 0 }

// Dropout is inverted dropout: in training mode it zeroes each element with
// probability Rate and scales survivors by 1/(1-Rate); in evaluation or when
// frozen it is the identity.
type Dropout struct {
	base
	rate float64
	rng  *rand.Rand
	mask []float32
}

var _ Layer = (*Dropout)(nil)

// NewDropout constructs a dropout layer with the given drop rate in [0, 1).
// The layer owns a deterministic RNG derived from seed.
func NewDropout(name string, rate float64, seed int64) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("nn: dropout %q: rate %v outside [0,1)", name, rate)
	}
	return &Dropout{
		base: base{name: name},
		rate: rate,
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

// Reseed replaces the dropout RNG; used when cloning models so clones draw
// independent masks.
func (d *Dropout) Reseed(seed int64) { d.rng = rand.New(rand.NewSource(seed)) }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.frozen || d.rate == 0 {
		d.mask = nil
		return x.Clone()
	}
	y := x.Clone()
	if cap(d.mask) < y.Len() {
		d.mask = make([]float32, y.Len())
	}
	d.mask = d.mask[:y.Len()]
	keep := float32(1.0 / (1.0 - d.rate))
	for i := range y.Data() {
		if d.rng.Float64() < d.rate {
			d.mask[i] = 0
			y.Data()[i] = 0
		} else {
			d.mask[i] = keep
			y.Data()[i] *= keep
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dropout) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if !needDx {
		return nil
	}
	if d.mask == nil {
		return dy.Clone()
	}
	dx := dy.Clone()
	for i := range dx.Data() {
		dx.Data()[i] *= d.mask[i]
	}
	return dx
}

// OutputShape implements Layer.
func (d *Dropout) OutputShape(in []int) ([]int, error) { return append([]int(nil), in...), nil }

// FLOPsPerSample implements Layer.
func (d *Dropout) FLOPsPerSample(in []int) int64 { return int64(tensor.Volume(in)) }
