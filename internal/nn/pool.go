package nn

import (
	"fmt"

	"fedfteds/internal/tensor"
)

// MaxPool2D is a max pooling layer with square window and equal stride.
type MaxPool2D struct {
	base
	window int

	argmax   []int // flat input index of each output element
	argValid bool  // argmax holds the last training forward's indices
	inShape  []int

	// Cached workspaces, reused across steps (see the package aliasing rule).
	y, dx *tensor.Tensor
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D constructs a window×window max pool with stride = window.
func NewMaxPool2D(name string, window int) (*MaxPool2D, error) {
	if window <= 0 {
		return nil, fmt.Errorf("nn: maxpool %q: invalid window %d", name, window)
	}
	return &MaxPool2D{base: base{name: name}, window: window}, nil
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(shapeErr("maxpool "+p.name, "rank 4", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/p.window, w/p.window
	if oh == 0 || ow == 0 {
		panic(shapeErr("maxpool "+p.name, "input >= window", x.Shape()))
	}
	p.y = tensor.Ensure(p.y, n, c, oh, ow)
	y := p.y
	if cap(p.argmax) < n*c*oh*ow {
		p.argmax = make([]int, n*c*oh*ow)
	}
	p.argmax = p.argmax[:n*c*oh*ow]
	arg := p.argmax
	xd, yd := x.Data(), y.Data()
	for i := 0; i < n*c; i++ {
		in := xd[i*h*w : (i+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				bi := (i*oh+oy)*ow + ox
				best := in[oy*p.window*w+ox*p.window]
				bestIdx := i*h*w + oy*p.window*w + ox*p.window
				for ky := 0; ky < p.window; ky++ {
					for kx := 0; kx < p.window; kx++ {
						idx := (oy*p.window+ky)*w + ox*p.window + kx
						if in[idx] > best {
							best = in[idx]
							bestIdx = i*h*w + idx
						}
					}
				}
				yd[bi] = best
				arg[bi] = bestIdx
			}
		}
	}
	if train {
		p.inShape = captureShape(p.inShape, x)
	}
	p.argValid = train
	return y
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if !needDx {
		return nil
	}
	if !p.argValid {
		panic("nn: maxpool " + p.name + ": Backward without train Forward")
	}
	p.dx = tensor.Ensure(p.dx, p.inShape...)
	p.dx.Zero()
	dxd := p.dx.Data()
	for bi, src := range p.argmax {
		dxd[src] += dy.Data()[bi]
	}
	return p.dx
}

// OutputShape implements Layer.
func (p *MaxPool2D) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: maxpool %q: per-sample input %v", p.name, in)
	}
	oh, ow := in[1]/p.window, in[2]/p.window
	if oh == 0 || ow == 0 {
		return nil, fmt.Errorf("nn: maxpool %q: input %v smaller than window %d", p.name, in, p.window)
	}
	return []int{in[0], oh, ow}, nil
}

// FLOPsPerSample implements Layer.
func (p *MaxPool2D) FLOPsPerSample(in []int) int64 { return int64(tensor.Volume(in)) }

// GlobalAvgPool averages each channel's spatial plane, mapping (N, C, H, W)
// to (N, C). It is the head pooling of the Wide ResNet.
type GlobalAvgPool struct {
	base
	inShape []int

	// Cached workspaces, reused across steps (see the package aliasing rule).
	y, dx *tensor.Tensor
}

var _ Layer = (*GlobalAvgPool)(nil)

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool {
	return &GlobalAvgPool{base: base{name: name}}
}

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(shapeErr("gap "+g.name, "rank 4", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	sp := h * w
	g.y = tensor.Ensure(g.y, n, c)
	xd, yd := x.Data(), g.y.Data()
	inv := 1.0 / float64(sp)
	for i := 0; i < n*c; i++ {
		var s float64
		for _, v := range xd[i*sp : (i+1)*sp] {
			s += float64(v)
		}
		yd[i] = float32(s * inv)
	}
	g.inShape = captureShape(g.inShape, x)
	return g.y
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dy *tensor.Tensor, needDx bool) *tensor.Tensor {
	if !needDx {
		return nil
	}
	if g.inShape == nil {
		panic("nn: gap " + g.name + ": Backward without train Forward")
	}
	h, w := g.inShape[2], g.inShape[3]
	sp := h * w
	g.dx = tensor.Ensure(g.dx, g.inShape...)
	dxd := g.dx.Data()
	inv := float32(1.0 / float64(sp))
	for i, dv := range dy.Data() {
		grad := dv * inv
		row := dxd[i*sp : (i+1)*sp]
		for j := range row {
			row[j] = grad
		}
	}
	return g.dx
}

// OutputShape implements Layer.
func (g *GlobalAvgPool) OutputShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, fmt.Errorf("nn: gap %q: per-sample input %v", g.name, in)
	}
	return []int{in[0]}, nil
}

// FLOPsPerSample implements Layer.
func (g *GlobalAvgPool) FLOPsPerSample(in []int) int64 { return int64(tensor.Volume(in)) }
