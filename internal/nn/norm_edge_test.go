package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedfteds/internal/tensor"
)

func TestBatchNormDegenerateBatchOfOne(t *testing.T) {
	// A training forward with batch size 1 must not panic and must use the
	// running statistics, and Backward must produce finite gradients.
	bn, err := NewBatchNorm("bn", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Seed running stats with a few proper batches.
	rng := rand.New(rand.NewSource(1))
	warm := tensor.New(16, 3)
	warm.FillNormal(rng, 2, 1)
	for i := 0; i < 10; i++ {
		bn.Forward(warm, true)
	}
	rm := bn.runMean.Clone()

	single := tensor.New(1, 3)
	single.FillNormal(rng, 2, 1)
	y := bn.Forward(single, true)
	if !y.IsFinite() {
		t.Fatal("degenerate batch produced non-finite output")
	}
	// Running stats must not have been polluted by the undefined batch stats.
	if !bn.runMean.Equal(rm) {
		t.Fatal("batch-of-one forward updated running statistics")
	}
	dy := tensor.New(1, 3)
	dy.Fill(1)
	dx := bn.Backward(dy, true)
	if dx == nil || !dx.IsFinite() {
		t.Fatal("degenerate batch backward not finite")
	}
	// Gamma gradient accumulated (layer is trainable).
	if bn.gamma.G.Norm2() == 0 {
		t.Fatal("no gamma gradient from degenerate-batch backward")
	}
}

func TestBatchNormGradCheckDegeneratePath(t *testing.T) {
	// Numeric check of the decoupled backward: loss = Σ y² through a BN in
	// eval-statistics mode (frozen), perturbing the input.
	bn, err := NewBatchNorm("bn", 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	warm := tensor.New(32, 2)
	warm.FillNormal(rng, 0, 2)
	bn.Forward(warm, true)
	bn.SetFrozen(true)

	x := tensor.New(1, 2)
	x.FillNormal(rng, 0, 1)
	lossOf := func(in *tensor.Tensor) float64 {
		y := bn.Forward(in, true)
		var s float64
		for _, v := range y.Data() {
			s += float64(v) * float64(v)
		}
		return s
	}
	y := bn.Forward(x, true)
	dy := y.Clone()
	dy.Scale(2)
	dx := bn.Backward(dy, true)

	const eps = 1e-3
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		up := lossOf(x)
		x.Data()[i] = orig - eps
		down := lossOf(x)
		x.Data()[i] = orig
		numeric := (up - down) / (2 * eps)
		analytic := float64(dx.Data()[i])
		if math.Abs(numeric-analytic) > 1e-2*math.Max(1, math.Abs(numeric)) {
			t.Fatalf("dx[%d]: analytic %.5f numeric %.5f", i, analytic, numeric)
		}
	}
}

func TestSoftmaxPanicsOnBadInput(t *testing.T) {
	check := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
	check("rank1", func() { Softmax(tensor.New(4), 1) })
	check("zero temp", func() { Softmax(tensor.New(1, 4), 0) })
	check("entropy rank", func() { ShannonEntropyRows(tensor.New(4)) })
}

func TestSequentialNestedFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inner1, err := NewDense("i1", 4, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	inner2, err := NewDense("i2", 4, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	nested := NewSequential("outer", NewSequential("inner", inner1), inner2)
	if nested.Frozen() {
		t.Fatal("fresh container reported frozen")
	}
	inner1.SetFrozen(true)
	if nested.Frozen() {
		t.Fatal("partially frozen container reported fully frozen")
	}
	if got := len(nested.TrainableParams()); got != 2 {
		t.Fatalf("TrainableParams = %d, want 2", got)
	}
	inner2.SetFrozen(true)
	if !nested.Frozen() {
		t.Fatal("fully frozen container not reported frozen")
	}
}

func TestResidualFrozenNoGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b1, err := NewDense("b", 3, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewDense("s", 3, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	res := NewResidual("r", NewSequential("body", b1), NewSequential("short", sc))
	res.SetFrozen(true)
	x := tensor.New(2, 3)
	x.FillNormal(rng, 0, 1)
	y := res.Forward(x, true)
	dy := y.Clone()
	dx := res.Backward(dy, true)
	if dx == nil {
		t.Fatal("frozen residual should still pass dx when requested")
	}
	for _, p := range res.Params() {
		if p.G.Norm2() != 0 {
			t.Fatalf("frozen residual accumulated gradient on %q", p.Name)
		}
	}
}

func TestConvNoBiasHasSingleParam(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := NewConv2D("c", 2, 3, 3, ConvOpts{NoBias: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Params()); got != 1 {
		t.Fatalf("NoBias conv has %d params, want 1", got)
	}
	withBias, err := NewConv2D("c2", 2, 3, 3, ConvOpts{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(withBias.Params()); got != 2 {
		t.Fatalf("biased conv has %d params, want 2", got)
	}
}

func TestNewConvRejectsBadOpts(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewConv2D("c", 0, 3, 3, ConvOpts{}, rng); err == nil {
		t.Fatal("expected error for inC=0")
	}
	if _, err := NewConv2D("c", 2, 3, 3, ConvOpts{Padding: -1}, rng); err == nil {
		t.Fatal("expected error for negative padding")
	}
	if _, err := NewConv2D("c", 2, 3, 3, ConvOpts{Stride: -2}, rng); err == nil {
		t.Fatal("expected error for negative stride")
	}
}
