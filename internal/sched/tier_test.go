package sched

import (
	"reflect"
	"testing"

	"fedfteds/internal/tensor"
)

func tierCands(tiers []string) []Candidate {
	cands := make([]Candidate, len(tiers))
	for i, t := range tiers {
		cands[i] = Candidate{ClientID: i, DataSize: 10, Available: true, Tier: t}
	}
	return cands
}

func TestTierBalancedProportions(t *testing.T) {
	tiers := make([]string, 12)
	for i := range tiers {
		if i < 6 {
			tiers[i] = "low"
		} else {
			tiers[i] = "full"
		}
	}
	cands := tierCands(tiers)
	cohort := TierBalanced{}.Schedule(0, cands, 4, tensor.NewRand(1, 0, StreamTag))
	if len(cohort) != 4 {
		t.Fatalf("cohort size %d, want 4", len(cohort))
	}
	counts := map[string]int{}
	for _, id := range cohort {
		counts[cands[id].Tier]++
	}
	if counts["low"] != 2 || counts["full"] != 2 {
		t.Fatalf("tier split %v, want 2/2", counts)
	}
}

func TestTierBalancedDeterministicAndAvailable(t *testing.T) {
	cands := tierCands([]string{"low", "low", "mid", "mid", "full", "full"})
	cands[1].Available = false
	a := TierBalanced{}.Schedule(3, cands, 3, tensor.NewRand(7, 3, StreamTag))
	b := TierBalanced{}.Schedule(3, cands, 3, tensor.NewRand(7, 3, StreamTag))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("not deterministic: %v vs %v", a, b)
	}
	for _, id := range a {
		if !cands[id].Available {
			t.Fatalf("scheduled unavailable client %d", id)
		}
	}
	if len(a) != 3 {
		t.Fatalf("cohort size %d, want 3", len(a))
	}
}

// On an untiered pool TierBalanced is a single stratum filled uniformly, so
// it must pick exactly UniformRandom's cohort from the same rng stream.
func TestTierBalancedUntieredMatchesUniform(t *testing.T) {
	cands := tierCands(make([]string, 9)) // all Tier ""
	got := TierBalanced{}.Schedule(0, cands, 4, tensor.NewRand(5, 0, StreamTag))
	want := UniformRandom{}.Schedule(0, cands, 4, tensor.NewRand(5, 0, StreamTag))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("untiered TierBalanced %v != UniformRandom %v", got, want)
	}
}

func TestParseTier(t *testing.T) {
	s, err := Parse("tier")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "tier" {
		t.Fatalf("Name() = %q", s.Name())
	}
}
