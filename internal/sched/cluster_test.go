package sched

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fedfteds/internal/tensor"
)

// clusteredCands builds n available candidates assigned round-robin to the
// given cluster sizes (cluster i gets sizes[i] consecutive IDs).
func clusteredCands(sizes []int) []Candidate {
	var cands []Candidate
	id := 0
	for cl, n := range sizes {
		for i := 0; i < n; i++ {
			cands = append(cands, Candidate{ClientID: id, DataSize: 10, Available: true, Cluster: cl})
			id++
		}
	}
	return cands
}

func TestClusterSamplingStratifies(t *testing.T) {
	// 60/30/10 split over three clusters; k=10 must allocate 6/3/1.
	cands := clusteredCands([]int{60, 30, 10})
	got := ClusterSampling{}.Schedule(1, cands, 10, tensor.NewRand(3, 1, StreamTag))
	if len(got) != 10 {
		t.Fatalf("cohort size %d, want 10", len(got))
	}
	perCluster := make(map[int]int)
	byID := make(map[int]Candidate, len(cands))
	for _, c := range cands {
		byID[c.ClientID] = c
	}
	seen := make(map[int]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate client %d in cohort", id)
		}
		seen[id] = true
		perCluster[byID[id].Cluster]++
	}
	if perCluster[0] != 6 || perCluster[1] != 3 || perCluster[2] != 1 {
		t.Errorf("cluster allocation %v, want map[0:6 1:3 2:1]", perCluster)
	}
}

func TestClusterSamplingSmallClustersStayRepresented(t *testing.T) {
	// A 97/3 split with k=4: proportional share of the small cluster is
	// 0.12 slots, but largest remainder still gives the big cluster only its
	// floor+remainder — the small cluster is never starved below its
	// remainder rank. With k=4: exact = 3.88/0.12, floors 3/0, remainder
	// order big(0.88) then small(0.12) → 4/0... so the small cluster CAN get
	// zero in one round; what must hold is that it is sampled when its
	// remainder wins. Use k=33: exact 32.01/0.99 → floors 32/0, remainder
	// gives the last slot to the small cluster.
	cands := clusteredCands([]int{97, 3})
	got := ClusterSampling{}.Schedule(2, cands, 33, tensor.NewRand(7, 2, StreamTag))
	small := 0
	for _, id := range got {
		if id >= 97 {
			small++
		}
	}
	if small != 1 {
		t.Errorf("small cluster got %d slots, want 1", small)
	}
}

func TestClusterSamplingDeterministic(t *testing.T) {
	cands := clusteredCands([]int{20, 20, 20})
	a := ClusterSampling{}.Schedule(5, cands, 9, tensor.NewRand(11, 5, StreamTag))
	b := ClusterSampling{}.Schedule(5, cands, 9, tensor.NewRand(11, 5, StreamTag))
	if len(a) != len(b) {
		t.Fatalf("cohort sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cohorts differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestClusterSamplingDegeneratesUnclustered(t *testing.T) {
	// All candidates in cluster 0: exactly one inner call over the whole
	// pool, so the cohort matches plain UniformRandom under the same rng.
	cands := clusteredCands([]int{40})
	got := ClusterSampling{}.Schedule(3, cands, 8, tensor.NewRand(9, 3, StreamTag))
	want := UniformRandom{}.Schedule(3, cands, 8, tensor.NewRand(9, 3, StreamTag))
	if len(got) != len(want) {
		t.Fatalf("cohort sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cohorts differ: %v vs %v", got, want)
		}
	}
}

func TestClusterSamplingSkipsUnavailable(t *testing.T) {
	cands := clusteredCands([]int{10, 10})
	for i := range cands {
		if cands[i].Cluster == 0 {
			cands[i].Available = false
		}
	}
	got := ClusterSampling{}.Schedule(1, cands, 6, rand.New(rand.NewSource(4)))
	for _, id := range got {
		if id < 10 {
			t.Errorf("scheduled unavailable client %d", id)
		}
	}
	if len(got) != 6 {
		t.Errorf("cohort size %d, want 6", len(got))
	}
}

func TestParseCluster(t *testing.T) {
	s, err := Parse("cluster:uniform")
	if err != nil {
		t.Fatalf("Parse(cluster:uniform): %v", err)
	}
	if s.Name() != "cluster:uniform" {
		t.Errorf("Name() = %q, want cluster:uniform", s.Name())
	}
	s, err = Parse("cluster:entropy")
	if err != nil {
		t.Fatalf("Parse(cluster:entropy): %v", err)
	}
	if s.Name() != "cluster:entropy" {
		t.Errorf("Name() = %q, want cluster:entropy", s.Name())
	}
	// The churn wrapper composes outside the cluster wrapper only.
	s, err = Parse("avail:cluster:uniform")
	if err != nil {
		t.Fatalf("Parse(avail:cluster:uniform): %v", err)
	}
	if s.Name() != "avail:cluster:uniform" {
		t.Errorf("Name() = %q, want avail:cluster:uniform", s.Name())
	}
	if _, err := Parse("cluster:avail:uniform"); !errors.Is(err, ErrSched) {
		t.Errorf("Parse(cluster:avail:uniform) = %v, want ErrSched (stateful inner)", err)
	} else if !strings.Contains(err.Error(), "avail:cluster:avail:uniform") {
		t.Errorf("error should point at the avail-outermost composition, got: %v", err)
	}
	if _, err := Parse("cluster:bogus"); !errors.Is(err, ErrSched) {
		t.Errorf("Parse(cluster:bogus) = %v, want ErrSched", err)
	}
}

func TestAvailabilityTraceName(t *testing.T) {
	a := &Availability{Inner: UniformRandom{}}
	if a.Name() != "avail:uniform" {
		t.Errorf("Name() = %q, want avail:uniform", a.Name())
	}
	a.Trace = func(round, clientID int) bool { return true }
	if a.Name() != "avail:uniform" {
		t.Errorf("trace without name: Name() = %q, want avail:uniform", a.Name())
	}
	a.TraceName = "0011aabb"
	if a.Name() != "trace[0011aabb]:uniform" {
		t.Errorf("Name() = %q, want trace[0011aabb]:uniform", a.Name())
	}
	// TraceName alone (no trace) must not change the legacy rendering.
	a.Trace = nil
	if a.Name() != "avail:uniform" {
		t.Errorf("name without trace: Name() = %q, want avail:uniform", a.Name())
	}
}
