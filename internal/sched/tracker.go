package sched

import "math"

// Tracker accumulates the per-client utility feedback the server observes
// over a run: each completed round, a participant's reported mean EDS
// entropy (or its train loss where entropy is unavailable) replaces the
// client's stored utility. It is the feedback half of the EntropyUtility
// loop — candidates are stamped with the latest stored value, clients never
// heard from stay unscored and are handled by exploration.
//
// A Tracker is not safe for concurrent use; the round loop is sequential in
// both the simulator and the distributed server.
type Tracker struct {
	util    map[int]float64
	seconds map[int]float64
}

// NewTracker returns an empty feedback store.
func NewTracker() *Tracker {
	return &Tracker{util: make(map[int]float64), seconds: make(map[int]float64)}
}

// Observe records one client's reported utility and round seconds. NaN
// utilities are ignored (the client ran a selector with no utility signal
// and no loss was reported either); NaN seconds are ignored likewise.
func (t *Tracker) Observe(clientID int, utility, seconds float64) {
	if !math.IsNaN(utility) {
		t.util[clientID] = utility
	}
	if !math.IsNaN(seconds) {
		t.seconds[clientID] = seconds
	}
}

// ObserveUpdate records one completed round's feedback with the shared
// fallback rule: the utility is the reported mean EDS entropy, or the train
// loss when the client's selector has no entropy signal (NaN). Both the
// simulator and the distributed server feed the loop through this method,
// so the two paths cannot drift apart.
func (t *Tracker) ObserveUpdate(clientID int, meanEntropy, trainLoss, seconds float64) {
	u := meanEntropy
	if math.IsNaN(u) {
		u = trainLoss
	}
	t.Observe(clientID, u, seconds)
}

// ObserveTimeout records that a client blew the round deadline: its round
// seconds are at least the deadline, which keeps time-driven policies
// (PowerOfD) from treating a perpetually hung client — who never reports
// and would otherwise keep its optimistic zero — as the fastest candidate.
func (t *Tracker) ObserveTimeout(clientID int, deadlineSeconds float64) {
	if deadlineSeconds <= 0 {
		return
	}
	if deadlineSeconds > t.seconds[clientID] {
		t.seconds[clientID] = deadlineSeconds
	}
}

// Utility returns the client's last stored utility and whether one exists.
func (t *Tracker) Utility(clientID int) (float64, bool) {
	u, ok := t.util[clientID]
	return u, ok
}

// Seconds returns the client's last observed round seconds (zero before
// first contact) — the distributed server's ProjectedSeconds source.
func (t *Tracker) Seconds(clientID int) float64 { return t.seconds[clientID] }

// Stamp fills each candidate's Utility/HasUtility from the store, leaving
// the other fields untouched.
func (t *Tracker) Stamp(cands []Candidate) {
	for i := range cands {
		cands[i].Utility, cands[i].HasUtility = t.Utility(cands[i].ClientID)
	}
}

// Export returns copies of the stored utility and round-seconds maps — the
// tracker's complete state, exactly what a run checkpoint must carry so the
// EntropyUtility feedback loop resumes where it left off.
func (t *Tracker) Export() (util, seconds map[int]float64) {
	util = make(map[int]float64, len(t.util))
	for k, v := range t.util {
		util[k] = v
	}
	seconds = make(map[int]float64, len(t.seconds))
	for k, v := range t.seconds {
		seconds[k] = v
	}
	return util, seconds
}

// Restore replaces the tracker's state with copies of the given maps,
// reversing Export. Nil maps clear the store.
func (t *Tracker) Restore(util, seconds map[int]float64) {
	t.util = make(map[int]float64, len(util))
	for k, v := range util {
		t.util[k] = v
	}
	t.seconds = make(map[int]float64, len(seconds))
	for k, v := range seconds {
		t.seconds[k] = v
	}
}
