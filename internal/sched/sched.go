// Package sched implements server-side cohort scheduling: per round the
// server samples K clients from the full pool, and only the cohort trains.
// This is the client-level counterpart of the paper's sample-level entropy
// selection — clients already compute EDS entropy scores for their data, so
// the server can reuse the reported mean entropy as a client utility signal
// (the EntropyUtility policy). The subsystem is shared by the in-process
// simulator (core.Runner) and the distributed round engine
// (comm.RoundEngine); straggler and fault-tolerance policies then apply
// *within* the scheduled cohort.
//
// All policies are deterministic given the candidate slice and the caller's
// rng, and return cohorts as ascending client IDs.
package sched

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// ErrSched reports an invalid scheduling configuration.
var ErrSched = errors.New("sched: invalid configuration")

// StreamTag is the rng-stream salt every scheduling call site mixes into
// its per-round seed derivation (tensor.NewRand(seed, round, StreamTag)).
// One shared constant keeps the simulator, the distributed server and the
// experiments on the same dedicated stream, so enabling a scheduler never
// perturbs the straggler or training rng streams.
const StreamTag uint64 = 0x5C4ED

// Candidate describes one client eligible for the round.
type Candidate struct {
	// ClientID is the client's federation index.
	ClientID int
	// DataSize is |D_i|, the client's local dataset size.
	DataSize int
	// ProjectedSeconds estimates the client's round time: the simulator
	// projects it from the simtime cost model, the distributed server uses
	// the client's last reported TrainSeconds (zero before first contact).
	ProjectedSeconds float64
	// Utility is the client's last reported utility — mean EDS entropy when
	// the client runs entropy selection, otherwise its train loss.
	Utility float64
	// HasUtility reports whether Utility was ever observed; policies treat
	// clients without feedback as exploration targets.
	HasUtility bool
	// Available marks the client reachable this round. Policies never
	// schedule unavailable candidates.
	Available bool
	// Tier names the client's device capability tier (see internal/device);
	// empty when the federation is untiered. Tier-aware policies use it to
	// balance cohorts across capability classes.
	Tier string
	// Clients is how many leaf devices this candidate speaks for: 1 (or 0,
	// treated as 1) for a plain client, the region's population when the
	// candidate is a mid-tier relay. A hierarchical root schedules regions,
	// so population-sensitive decisions read this instead of assuming one
	// device per candidate.
	Clients int
	// Cluster is the client's similarity-cluster index (see internal/fleet:
	// clients are grouped at registration by their label-distribution /
	// entropy sketches). Zero for unclustered federations, where
	// ClusterSampling degenerates to its inner policy (single stratum).
	Cluster int
}

// Population returns the number of leaf devices the candidate represents,
// treating the zero value (a plain client that never set the field) as 1.
func (c Candidate) Population() int {
	if c.Clients <= 0 {
		return 1
	}
	return c.Clients
}

// Scheduler picks the per-round cohort.
type Scheduler interface {
	// Name returns the policy's CLI identifier ("uniform", "powerd", ...).
	Name() string
	// Schedule returns at most k client IDs drawn from the available
	// candidates, ascending. Implementations must be deterministic given
	// cands and rng; round lets stateful policies (churn models) evolve.
	Schedule(round int, cands []Candidate, k int, rng *rand.Rand) []int
}

// Stateful is implemented by schedulers whose Schedule calls evolve internal
// state across rounds (currently only Availability's Markov chain). A run
// checkpoint captures this state so a resumed run schedules bit-identically
// to an uninterrupted one; every other shipped policy is stateless — their
// per-round draws derive entirely from the candidates and the caller's rng.
type Stateful interface {
	Scheduler
	// SnapshotState returns a deterministic serialization of the policy's
	// internal state (identical state must yield identical bytes).
	SnapshotState() ([]byte, error)
	// RestoreState replaces the internal state from a SnapshotState blob.
	RestoreState(state []byte) error
}

// clampK bounds the cohort size to [1, n] (k <= 0 means the whole pool).
func clampK(k, n int) int {
	if k <= 0 || k > n {
		return n
	}
	return k
}

// availableSet returns the indices of the available candidates.
func availableSet(cands []Candidate) []int {
	out := make([]int, 0, len(cands))
	for i, c := range cands {
		if c.Available {
			out = append(out, i)
		}
	}
	return out
}

// selectTopK returns the indices 0..n-1 of the k best items under better —
// a strict total order (better(a, b) reports item a strictly better than
// item b; break ties explicitly so the order is total) — as an unordered
// set. A bounded heap keeps this O(n log k) against the full sort's
// O(n log n), which dominates fleet-scale scheduling (N=1e5, K=1e3).
func selectTopK(n, k int, better func(a, b int) bool) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	h := make([]int, 0, k) // min-heap: h[0] is the worst kept item
	worse := func(a, b int) bool { return better(b, a) }
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !worse(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r, m := 2*i+1, 2*i+2, i
			if l < len(h) && worse(h[l], h[m]) {
				m = l
			}
			if r < len(h) && worse(h[r], h[m]) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := 0; i < n; i++ {
		if len(h) < k {
			h = append(h, i)
			siftUp(len(h) - 1)
		} else if better(i, h[0]) {
			h[0] = i
			siftDown()
		}
	}
	return h
}

// finishCohort maps chosen candidate indices to sorted client IDs.
func finishCohort(cands []Candidate, chosen []int) []int {
	ids := make([]int, len(chosen))
	for i, idx := range chosen {
		ids[i] = cands[idx].ClientID
	}
	sort.Ints(ids)
	return ids
}

// UniformRandom samples the cohort uniformly without replacement — the
// classical FedAvg client sampling and the baseline every other policy is
// judged against.
type UniformRandom struct{}

var _ Scheduler = UniformRandom{}

// Name implements Scheduler.
func (UniformRandom) Name() string { return "uniform" }

// Schedule implements Scheduler.
func (UniformRandom) Schedule(_ int, cands []Candidate, k int, rng *rand.Rand) []int {
	avail := availableSet(cands)
	k = clampK(k, len(avail))
	perm := rng.Perm(len(avail))
	chosen := make([]int, 0, k)
	for _, p := range perm[:k] {
		chosen = append(chosen, avail[p])
	}
	return finishCohort(cands, chosen)
}

// SizeWeighted samples the cohort without replacement with probability
// proportional to |D_i| (FedAvg-style size-biased sampling), via the
// Efraimidis–Spirakis exponential-key reservoir: each candidate draws
// key = U^(1/w) and the k largest keys win.
type SizeWeighted struct{}

var _ Scheduler = SizeWeighted{}

// Name implements Scheduler.
func (SizeWeighted) Name() string { return "size" }

// Schedule implements Scheduler.
func (SizeWeighted) Schedule(_ int, cands []Candidate, k int, rng *rand.Rand) []int {
	avail := availableSet(cands)
	k = clampK(k, len(avail))
	keys := make([]float64, len(avail))
	for i, idx := range avail {
		w := float64(cands[idx].DataSize)
		if w < 1 {
			w = 1
		}
		keys[i] = math.Pow(rng.Float64(), 1/w)
	}
	top := selectTopK(len(avail), k, func(a, b int) bool {
		if keys[a] != keys[b] {
			return keys[a] > keys[b]
		}
		return a < b
	})
	chosen := make([]int, 0, k)
	for _, i := range top {
		chosen = append(chosen, avail[i])
	}
	return finishCohort(cands, chosen)
}

// EntropyUtility exploits the clients with the highest reported utility —
// mean EDS entropy, or train loss where entropy is unavailable — with
// ε-greedy exploration: round(ε·k) cohort slots (at least one when ε > 0
// and k > 1) go to uniformly random non-exploited candidates, so clients
// the server has never heard from (or whose utility decayed) keep a
// positive selection probability every round and starved clients recover.
type EntropyUtility struct {
	// Epsilon is the exploration share of the cohort in [0, 1); 0 defaults
	// to 0.1 and negative values disable exploration (pure exploit).
	Epsilon float64
}

var _ Scheduler = EntropyUtility{}

// DefaultEpsilon is the exploration share used when Epsilon is zero.
const DefaultEpsilon = 0.1

// Name implements Scheduler.
func (EntropyUtility) Name() string { return "entropy" }

// Schedule implements Scheduler.
func (e EntropyUtility) Schedule(_ int, cands []Candidate, k int, rng *rand.Rand) []int {
	eps := e.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	avail := availableSet(cands)
	k = clampK(k, len(avail))
	nExplore := int(math.Round(eps * float64(k)))
	if nExplore < 0 {
		nExplore = 0
	}
	if eps > 0 && nExplore == 0 && k > 1 {
		// Small cohorts must still explore: round(ε·k) = 0 would starve
		// every client outside the exploited set forever.
		nExplore = 1
	}
	if nExplore > k {
		nExplore = k
	}

	// Exploit: the highest-utility scored candidates, ties broken by ID.
	scored := make([]int, 0, len(avail))
	for _, idx := range avail {
		if cands[idx].HasUtility {
			scored = append(scored, idx)
		}
	}
	nExploit := k - nExplore
	if nExploit > len(scored) {
		nExploit = len(scored) // the rest of the pool is unexplored anyway
	}
	top := selectTopK(len(scored), nExploit, func(a, b int) bool {
		ua, ub := cands[scored[a]].Utility, cands[scored[b]].Utility
		if ua != ub {
			return ua > ub
		}
		return cands[scored[a]].ClientID < cands[scored[b]].ClientID
	})
	chosen := make([]int, 0, k)
	exploited := make(map[int]bool, len(top))
	for _, i := range top {
		chosen = append(chosen, scored[i])
		exploited[scored[i]] = true
	}

	// Explore: uniform over everything not exploited, never-scored clients
	// included. Unscored candidates are eligible here, which is what lets a
	// cold-started or starved client re-enter the feedback loop. avail is
	// ascending, so rest is too — the draw does not depend on the scored
	// split.
	rest := make([]int, 0, len(avail)-len(chosen))
	for _, idx := range avail {
		if !exploited[idx] {
			rest = append(rest, idx)
		}
	}
	perm := rng.Perm(len(rest))
	for _, p := range perm {
		if len(chosen) >= k {
			break
		}
		chosen = append(chosen, rest[p])
	}
	return finishCohort(cands, chosen)
}

// PowerOfD is the fast-cohort "power of d choices" policy: sample d·k
// candidates uniformly, keep the k with the smallest projected round time.
// It trades a little sampling bias for a cohort whose straggler tail is cut
// off, shrinking round wall-clock without pinning the federation to the same
// fast clients forever (the d·k pre-sample keeps rotation).
type PowerOfD struct {
	// D is the oversampling factor; 0 defaults to 2.
	D int
}

var _ Scheduler = PowerOfD{}

// DefaultD is the oversampling factor used when D is zero.
const DefaultD = 2

// Name implements Scheduler.
func (PowerOfD) Name() string { return "powerd" }

// Schedule implements Scheduler.
func (p PowerOfD) Schedule(_ int, cands []Candidate, k int, rng *rand.Rand) []int {
	d := p.D
	if d <= 0 {
		d = DefaultD
	}
	avail := availableSet(cands)
	k = clampK(k, len(avail))
	pool := d * k
	if pool > len(avail) {
		pool = len(avail)
	}
	perm := rng.Perm(len(avail))
	sampled := make([]int, 0, pool)
	for _, pi := range perm[:pool] {
		sampled = append(sampled, avail[pi])
	}
	sort.SliceStable(sampled, func(a, b int) bool {
		ta, tb := cands[sampled[a]].ProjectedSeconds, cands[sampled[b]].ProjectedSeconds
		if ta != tb {
			return ta < tb
		}
		return cands[sampled[a]].ClientID < cands[sampled[b]].ClientID
	})
	return finishCohort(cands, sampled[:k])
}

// TierBalanced stratifies the cohort across device tiers: cohort slots are
// split over the tiers present in the candidate pool proportionally to each
// tier's available population (largest remainder, ties to the
// lexicographically earlier tier name), and filled uniformly at random
// within each tier. This keeps low-capability clients — whose partial
// updates cover fewer layers — represented every round instead of being
// crowded out, so the lower groups still aggregate over enough full-tier
// clients while upper groups see the whole population. Candidates with no
// tier ("") form their own stratum, which makes the policy degenerate to
// UniformRandom on untiered federations (single stratum, uniform within).
type TierBalanced struct{}

var _ Scheduler = TierBalanced{}

// Name implements Scheduler.
func (TierBalanced) Name() string { return "tier" }

// Schedule implements Scheduler. Tiers draw from rng in ascending tier-name
// order, so the cohort is reproducible from the seed.
func (TierBalanced) Schedule(_ int, cands []Candidate, k int, rng *rand.Rand) []int {
	avail := availableSet(cands)
	k = clampK(k, len(avail))
	byTier := make(map[string][]int)
	for _, idx := range avail {
		t := cands[idx].Tier
		byTier[t] = append(byTier[t], idx)
	}
	tiers := make([]string, 0, len(byTier))
	for t := range byTier {
		tiers = append(tiers, t)
	}
	sort.Strings(tiers)

	// Proportional slots per tier by largest remainder.
	counts := make([]int, len(tiers))
	rems := make([]float64, len(tiers))
	assigned := 0
	for i, t := range tiers {
		exact := float64(k) * float64(len(byTier[t])) / float64(len(avail))
		counts[i] = int(exact)
		if counts[i] > len(byTier[t]) {
			counts[i] = len(byTier[t])
		}
		rems[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, len(tiers))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rems[order[a]] > rems[order[b]] })
	for assigned < k {
		grew := false
		for _, i := range order {
			if assigned >= k {
				break
			}
			if counts[i] < len(byTier[tiers[i]]) {
				counts[i]++
				assigned++
				grew = true
			}
		}
		if !grew {
			break
		}
	}

	chosen := make([]int, 0, k)
	for i, t := range tiers {
		pool := byTier[t]
		perm := rng.Perm(len(pool))
		for _, p := range perm[:counts[i]] {
			chosen = append(chosen, pool[p])
		}
	}
	return finishCohort(cands, chosen)
}

// ClusterSampling stratifies the cohort across similarity clusters — groups
// of clients with alike label-distribution/entropy sketches (computed at
// fleet registration and carried in Candidate.Cluster). Cohort slots are
// split over the clusters present in the available pool proportionally to
// cluster population (largest remainder, ties to the lower cluster index)
// and filled by the inner policy *within* each cluster, so every data
// modality stays represented each round no matter how skewed the pool — the
// similarity-aware cohort selection of arXiv 2403.07450 adapted to cheap
// registration-time sketches. On an unclustered pool (all Cluster zero) the
// policy is exactly one inner call over the whole pool.
//
// The inner policy must be stateless: Parse refuses "cluster:avail:…" and
// directs the caller to "avail:cluster:…", which keeps the churn state at
// the top level where run checkpoints capture it.
type ClusterSampling struct {
	// Inner fills each cluster's slots; nil defaults to UniformRandom.
	Inner Scheduler
}

var _ Scheduler = ClusterSampling{}

// Name implements Scheduler.
func (c ClusterSampling) Name() string { return "cluster:" + c.inner().Name() }

// inner returns the wrapped policy, defaulting to UniformRandom.
func (c ClusterSampling) inner() Scheduler {
	if c.Inner == nil {
		return UniformRandom{}
	}
	return c.Inner
}

// Schedule implements Scheduler. Clusters consume rng in ascending cluster
// order (one inner call per cluster), so cohorts are reproducible from the
// seed.
func (c ClusterSampling) Schedule(round int, cands []Candidate, k int, rng *rand.Rand) []int {
	avail := availableSet(cands)
	k = clampK(k, len(avail))
	byCluster := make(map[int][]int)
	for _, idx := range avail {
		cl := cands[idx].Cluster
		byCluster[cl] = append(byCluster[cl], idx)
	}
	if len(byCluster) <= 1 {
		return c.inner().Schedule(round, cands, k, rng)
	}
	clusters := make([]int, 0, len(byCluster))
	for cl := range byCluster {
		clusters = append(clusters, cl)
	}
	sort.Ints(clusters)

	// Proportional slots per cluster by largest remainder, ties to the lower
	// cluster index (sort.SliceStable over the ascending cluster order).
	counts := make([]int, len(clusters))
	rems := make([]float64, len(clusters))
	assigned := 0
	for i, cl := range clusters {
		exact := float64(k) * float64(len(byCluster[cl])) / float64(len(avail))
		counts[i] = int(exact)
		if counts[i] > len(byCluster[cl]) {
			counts[i] = len(byCluster[cl])
		}
		rems[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rems[order[a]] > rems[order[b]] })
	for assigned < k {
		grew := false
		for _, i := range order {
			if assigned >= k {
				break
			}
			if counts[i] < len(byCluster[clusters[i]]) {
				counts[i]++
				assigned++
				grew = true
			}
		}
		if !grew {
			break
		}
	}

	// Each cluster's slots are filled by the inner policy over that
	// cluster's candidates only. The sub-slice preserves global ClientIDs,
	// so the inner cohort needs no re-mapping.
	ids := make([]int, 0, k)
	sub := make([]Candidate, 0, 64)
	for i, cl := range clusters {
		if counts[i] == 0 {
			continue
		}
		sub = sub[:0]
		for _, idx := range byCluster[cl] {
			sub = append(sub, cands[idx])
		}
		ids = append(ids, c.inner().Schedule(round, sub, counts[i], rng)...)
	}
	sort.Ints(ids)
	return ids
}

// Availability composes any inner policy with client churn: each client is
// an on/off two-state Markov chain (per round, an up client goes down with
// DownProb and a down client comes back with UpProb), or replays an
// explicit trace. Unavailable clients are masked out of the candidate set
// before the inner policy runs. When churn leaves no candidate up, the
// lowest-ID candidate the caller marked available is forced up so rounds
// cannot stall — the scheduling analogue of DeadlineStraggler always
// keeping the fastest client. Candidates the caller itself marked
// unavailable are never scheduled, fallback included.
//
// The Markov chain is stateful; construct one Availability per run and do
// not share it across concurrent runs.
type Availability struct {
	// Inner is the policy applied to the surviving candidates; nil defaults
	// to UniformRandom.
	Inner Scheduler
	// DownProb is P(up → down) per round; UpProb is P(down → up). Both
	// default to 0 (no churn) and must lie in [0, 1].
	DownProb, UpProb float64
	// Trace, when non-nil, replays availability instead of the Markov chain:
	// Trace(round, clientID) reports whether the client is up.
	Trace func(round, clientID int) bool
	// TraceName identifies the replayed trace (fleet traces use their content
	// fingerprint). When set together with Trace, it is folded into Name(),
	// so a run checkpointed under one trace refuses to resume under an edited
	// trace or under the Markov chain — the same mismatch refusal every other
	// scheduler change gets.
	TraceName string

	up map[int]bool // Markov state; clients start up
}

var _ Scheduler = (*Availability)(nil)
var _ Stateful = (*Availability)(nil)

// Name implements Scheduler. Markov-churn wrappers are "avail:<inner>";
// trace replays with a TraceName render as "trace[<name>]:<inner>" so the
// trace's identity participates in checkpoint validation.
func (a *Availability) Name() string {
	if a.Trace != nil && a.TraceName != "" {
		return "trace[" + a.TraceName + "]:" + a.inner().Name()
	}
	return "avail:" + a.inner().Name()
}

// SnapshotState implements Stateful: the Markov up/down map serialized in
// ascending client-ID order (u64 count, then per client an i64 ID and one
// status byte), so identical churn state always yields identical bytes.
func (a *Availability) SnapshotState() ([]byte, error) {
	ids := make([]int, 0, len(a.up))
	for id := range a.up {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	buf := make([]byte, 0, 8+9*len(ids))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(id)))
		var b byte
		if a.up[id] {
			b = 1
		}
		buf = append(buf, b)
	}
	return buf, nil
}

// RestoreState implements Stateful, reversing SnapshotState.
func (a *Availability) RestoreState(state []byte) error {
	if len(state) < 8 {
		return fmt.Errorf("%w: availability state truncated (%d bytes)", ErrSched, len(state))
	}
	n := binary.LittleEndian.Uint64(state)
	rest := state[8:]
	// The division guard comes first: checking 9*n alone would let a count
	// near 2^64 overflow back into range and panic the decode loop below.
	if n > uint64(len(rest))/9 || uint64(len(rest)) != 9*n {
		return fmt.Errorf("%w: availability state claims %d clients in %d bytes", ErrSched, n, len(rest))
	}
	up := make(map[int]bool, n)
	for i := uint64(0); i < n; i++ {
		id := int(int64(binary.LittleEndian.Uint64(rest[9*i:])))
		switch rest[9*i+8] {
		case 0:
			up[id] = false
		case 1:
			up[id] = true
		default:
			return fmt.Errorf("%w: availability state has invalid status byte %d", ErrSched, rest[9*i+8])
		}
	}
	a.up = up
	return nil
}

// inner returns the wrapped policy, defaulting to UniformRandom.
func (a *Availability) inner() Scheduler {
	if a.Inner == nil {
		return UniformRandom{}
	}
	return a.Inner
}

// Schedule implements Scheduler. Churn transitions draw from rng before the
// inner policy does, in ascending candidate order, so a run is reproducible
// from its seed.
func (a *Availability) Schedule(round int, cands []Candidate, k int, rng *rand.Rand) []int {
	if a.up == nil {
		a.up = make(map[int]bool, len(cands))
	}
	masked := make([]Candidate, len(cands))
	copy(masked, cands)
	anyUp := false
	for i := range masked {
		id := masked[i].ClientID
		var up bool
		if a.Trace != nil {
			up = a.Trace(round, id)
		} else {
			up = true // clients start up
			if wasUp, seen := a.up[id]; seen {
				up = wasUp
			}
			if up {
				up = rng.Float64() >= a.DownProb
			} else {
				up = rng.Float64() < a.UpProb
			}
			a.up[id] = up
		}
		masked[i].Available = masked[i].Available && up
		if masked[i].Available {
			anyUp = true
		}
	}
	if !anyUp {
		// Churn took the whole pool down: force the lowest-ID candidate back
		// up — but only among those the *caller* considered available; a
		// candidate the caller marked unreachable must never be scheduled.
		lowest := -1
		for i := range masked {
			if cands[i].Available && (lowest < 0 || masked[i].ClientID < masked[lowest].ClientID) {
				lowest = i
			}
		}
		if lowest >= 0 {
			masked[lowest].Available = true
		}
	}
	return a.inner().Schedule(round, masked, k, rng)
}

// PolicyNames lists the identifiers Parse accepts, in display order.
func PolicyNames() []string {
	return []string{"uniform", "size", "entropy", "powerd", "tier", "cluster:<inner>", "avail:<inner>"}
}

// Parse maps a CLI policy name to a Scheduler. The names are shared by
// `fedsim -sched` and `fedserver -sched`: "uniform", "size", "entropy",
// "powerd", "tier", "cluster:<inner>" for similarity-stratified sampling
// (e.g. "cluster:uniform"), and "avail:<inner>" for the churn wrapper (e.g.
// "avail:entropy"). The wrappers compose — "avail:cluster:uniform" is churn
// over cluster-stratified sampling — but only in that order: the stateful
// churn wrapper must stay outermost so checkpoints capture its state.
// Parameters keep their defaults (ε = 0.1, d = 2, churn DownProb = UpProb =
// 0.2); construct policies directly for other settings.
func Parse(name string) (Scheduler, error) {
	switch {
	case name == "uniform":
		return UniformRandom{}, nil
	case name == "size":
		return SizeWeighted{}, nil
	case name == "entropy":
		return EntropyUtility{}, nil
	case name == "powerd":
		return PowerOfD{}, nil
	case name == "tier":
		return TierBalanced{}, nil
	case strings.HasPrefix(name, "cluster:"):
		inner, err := Parse(strings.TrimPrefix(name, "cluster:"))
		if err != nil {
			return nil, err
		}
		if _, stateful := inner.(Stateful); stateful {
			return nil, fmt.Errorf("%w: %q nests the stateful churn wrapper inside the stateless "+
				"cluster wrapper, which would drop its state from checkpoints — compose as %q instead",
				ErrSched, name, "avail:"+name)
		}
		return ClusterSampling{Inner: inner}, nil
	case strings.HasPrefix(name, "avail:"):
		inner, err := Parse(strings.TrimPrefix(name, "avail:"))
		if err != nil {
			return nil, err
		}
		return &Availability{Inner: inner, DownProb: 0.2, UpProb: 0.2}, nil
	default:
		return nil, fmt.Errorf("%w: unknown policy %q (want one of %s)",
			ErrSched, name, strings.Join(PolicyNames(), ", "))
	}
}
