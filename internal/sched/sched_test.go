package sched

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// makeCandidates builds n candidates with deterministic sizes, times and
// utilities: client i has size 10+i, projected time 1+i seconds, utility
// i/10 (scored only when i is even).
func makeCandidates(n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		out[i] = Candidate{
			ClientID:         i,
			DataSize:         10 + i,
			ProjectedSeconds: float64(1 + i),
			Utility:          float64(i) / 10,
			HasUtility:       i%2 == 0,
			Available:        true,
		}
	}
	return out
}

// policies lists one instance of every shipped policy.
func policies() []Scheduler {
	return []Scheduler{
		UniformRandom{},
		SizeWeighted{},
		EntropyUtility{},
		PowerOfD{},
		&Availability{Inner: UniformRandom{}, DownProb: 0.3, UpProb: 0.3},
	}
}

func TestPoliciesDeterministicUnderFixedSeed(t *testing.T) {
	for _, mk := range []func() Scheduler{
		func() Scheduler { return UniformRandom{} },
		func() Scheduler { return SizeWeighted{} },
		func() Scheduler { return EntropyUtility{} },
		func() Scheduler { return PowerOfD{} },
		func() Scheduler { return &Availability{Inner: EntropyUtility{}, DownProb: 0.3, UpProb: 0.3} },
	} {
		// Two independent runs over several rounds must agree exactly:
		// stateful policies included, determinism is per-run, not per-call.
		run := func() [][]int {
			s := mk()
			var got [][]int
			for round := 1; round <= 5; round++ {
				rng := rand.New(rand.NewSource(int64(100 + round)))
				got = append(got, s.Schedule(round, makeCandidates(20), 6, rng))
			}
			return got
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: runs diverge under fixed seed:\n%v\n%v", mk().Name(), a, b)
		}
	}
}

func TestCohortShapeInvariants(t *testing.T) {
	for _, s := range policies() {
		for round := 1; round <= 4; round++ {
			cands := makeCandidates(15)
			rng := rand.New(rand.NewSource(int64(round)))
			got := s.Schedule(round, cands, 5, rng)
			if len(got) == 0 || len(got) > 5 {
				t.Fatalf("%s round %d: cohort size %d, want 1..5", s.Name(), round, len(got))
			}
			if !sort.IntsAreSorted(got) {
				t.Fatalf("%s round %d: cohort %v not ascending", s.Name(), round, got)
			}
			seen := map[int]bool{}
			for _, id := range got {
				if id < 0 || id >= 15 {
					t.Fatalf("%s round %d: unknown client %d", s.Name(), round, id)
				}
				if seen[id] {
					t.Fatalf("%s round %d: duplicate client %d in %v", s.Name(), round, id, got)
				}
				seen[id] = true
			}
		}
	}
}

func TestKClampAndFullPool(t *testing.T) {
	for _, s := range policies() {
		cands := makeCandidates(8)
		// k <= 0 and k > n both mean the whole available pool.
		for _, k := range []int{0, -1, 8, 100} {
			rng := rand.New(rand.NewSource(7))
			got := s.Schedule(1, cands, k, rng)
			// The Availability wrapper may churn clients out; everyone else
			// must return the full pool.
			if _, churned := s.(*Availability); churned {
				if len(got) == 0 {
					t.Fatalf("%s k=%d: empty cohort", s.Name(), k)
				}
				continue
			}
			if len(got) != 8 {
				t.Fatalf("%s k=%d: cohort %v, want all 8", s.Name(), k, got)
			}
		}
	}
}

func TestUnavailableCandidatesNeverScheduled(t *testing.T) {
	for _, s := range policies() {
		cands := makeCandidates(12)
		down := map[int]bool{2: true, 5: true, 9: true}
		for i := range cands {
			if down[cands[i].ClientID] {
				cands[i].Available = false
			}
		}
		rng := rand.New(rand.NewSource(3))
		for _, id := range s.Schedule(1, cands, 12, rng) {
			if down[id] {
				t.Fatalf("%s scheduled unavailable client %d", s.Name(), id)
			}
		}
	}
}

func TestSizeWeightedPrefersLargeClients(t *testing.T) {
	// One client holds ~100× the data of the rest; over many rounds it must
	// be scheduled far more often than a uniform draw would.
	cands := makeCandidates(20)
	for i := range cands {
		cands[i].DataSize = 10
	}
	cands[13].DataSize = 1000
	rng := rand.New(rand.NewSource(11))
	hits := 0
	const rounds = 200
	for round := 0; round < rounds; round++ {
		for _, id := range (SizeWeighted{}).Schedule(round, cands, 4, rng) {
			if id == 13 {
				hits++
			}
		}
	}
	// Uniform would give 4/20 = 20% ≈ 40 hits; the size bias should push
	// client 13 into nearly every cohort.
	if hits < rounds*3/4 {
		t.Fatalf("big client scheduled %d/%d rounds, want >= %d", hits, rounds, rounds*3/4)
	}
}

func TestEntropyUtilityExploitsTopUtility(t *testing.T) {
	// With ε=0, the cohort is exactly the top-k scored clients by utility.
	cands := makeCandidates(10)
	for i := range cands {
		cands[i].HasUtility = true
		cands[i].Utility = float64(i)
	}
	rng := rand.New(rand.NewSource(1))
	got := EntropyUtility{Epsilon: -1}.Schedule(1, cands, 3, rng) // negative ε: pure exploit
	want := []int{7, 8, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pure exploit cohort %v, want %v", got, want)
	}
}

func TestEntropyUtilityExplorationBounds(t *testing.T) {
	// ε=0.5, k=10: exactly round(ε·k)=5 slots must explore. The top-5
	// utilities are always in; the other 5 slots are uniform over the rest,
	// so over many rounds every starved client (no utility) gets scheduled.
	cands := makeCandidates(30)
	for i := range cands {
		cands[i].HasUtility = i < 15 // clients 15..29 have never reported
		cands[i].Utility = float64(i)
	}
	s := EntropyUtility{Epsilon: 0.5}
	rng := rand.New(rand.NewSource(5))
	starvedHits := make(map[int]int)
	for round := 0; round < 300; round++ {
		got := s.Schedule(round, cands, 10, rng)
		exploit := 0
		for _, id := range got {
			if id >= 10 && id <= 14 {
				exploit++ // top-5 utilities among scored clients
			}
			if id >= 15 {
				starvedHits[id]++
			}
		}
		if exploit != 5 {
			t.Fatalf("round %d: %d of top-5 utility clients in cohort %v, want all 5", round, exploit, got)
		}
	}
	for id := 15; id < 30; id++ {
		if starvedHits[id] == 0 {
			t.Fatalf("starved client %d never explored in 300 rounds", id)
		}
	}
}

// TestEntropyUtilitySmallCohortStillExplores pins the starvation fix: at
// K=2 with default ε, round(ε·K) is 0, but one slot must still explore —
// otherwise a client outside the initially exploited pair would never be
// scheduled, never report, and stay starved forever.
func TestEntropyUtilitySmallCohortStillExplores(t *testing.T) {
	cands := makeCandidates(3)
	for i := range cands {
		cands[i].HasUtility = i < 2 // client 2 has never reported
		cands[i].Utility = 1
	}
	rng := rand.New(rand.NewSource(8))
	s := EntropyUtility{} // default ε = 0.1
	scheduled := false
	for round := 1; round <= 50 && !scheduled; round++ {
		for _, id := range s.Schedule(round, cands, 2, rng) {
			if id == 2 {
				scheduled = true
			}
		}
	}
	if !scheduled {
		t.Fatal("starved client never explored at K=2 in 50 rounds")
	}
}

func TestEntropyUtilityFallsBackWhenUnscored(t *testing.T) {
	// No client has ever reported: the whole cohort comes from exploration
	// and still fills to k.
	cands := makeCandidates(10)
	for i := range cands {
		cands[i].HasUtility = false
	}
	rng := rand.New(rand.NewSource(2))
	got := EntropyUtility{}.Schedule(1, cands, 4, rng)
	if len(got) != 4 {
		t.Fatalf("cold-start cohort %v, want 4 clients", got)
	}
}

func TestPowerOfDPicksFastestOfSample(t *testing.T) {
	// With d large enough to cover the pool, PowerOfD degenerates to the k
	// globally fastest clients — candidates are built with time 1+i, so the
	// cohort is exactly clients 0..k-1.
	cands := makeCandidates(20)
	rng := rand.New(rand.NewSource(9))
	got := PowerOfD{D: 100}.Schedule(1, cands, 5, rng)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("full-pool powerd cohort %v, want the 5 fastest", got)
	}

	// With d=2 the cohort's mean projected time must beat a uniform draw's
	// expectation over many rounds.
	var powerSum, uniformSum float64
	const rounds = 100
	prng := rand.New(rand.NewSource(10))
	urng := rand.New(rand.NewSource(10))
	for round := 0; round < rounds; round++ {
		for _, id := range (PowerOfD{D: 2}).Schedule(round, cands, 5, prng) {
			powerSum += cands[id].ProjectedSeconds
		}
		for _, id := range (UniformRandom{}).Schedule(round, cands, 5, urng) {
			uniformSum += cands[id].ProjectedSeconds
		}
	}
	if powerSum >= uniformSum {
		t.Fatalf("powerd mean round time %v not below uniform %v", powerSum/rounds, uniformSum/rounds)
	}
}

func TestAvailabilityChurnComposition(t *testing.T) {
	// A replayed trace keeps odd clients down on odd rounds: the inner
	// policy must never see them there, and they must rejoin on even rounds.
	trace := func(round, clientID int) bool {
		return round%2 == 0 || clientID%2 == 0
	}
	s := &Availability{Inner: UniformRandom{}, Trace: trace}
	cands := makeCandidates(10)
	rng := rand.New(rand.NewSource(4))
	oddRound := s.Schedule(1, cands, 10, rng)
	for _, id := range oddRound {
		if id%2 == 1 {
			t.Fatalf("round 1 scheduled churned-out client %d in %v", id, oddRound)
		}
	}
	evenRound := s.Schedule(2, cands, 10, rng)
	if len(evenRound) != 10 {
		t.Fatalf("round 2 cohort %v, want the full rejoined pool", evenRound)
	}
}

func TestAvailabilityMarkovStatePersistsAcrossRounds(t *testing.T) {
	// With DownProb=1 and UpProb=0, every client goes down at round 1 and
	// stays down — the guarantee then forces exactly one client up.
	s := &Availability{Inner: UniformRandom{}, DownProb: 1, UpProb: 0}
	cands := makeCandidates(6)
	rng := rand.New(rand.NewSource(6))
	for round := 1; round <= 3; round++ {
		got := s.Schedule(round, cands, 6, rng)
		if !reflect.DeepEqual(got, []int{0}) {
			t.Fatalf("round %d: cohort %v, want forced lowest-ID client only", round, got)
		}
	}
}

// TestAvailabilityFallbackRespectsCallerAvailability pins the invariant
// that the all-down fallback only resurrects candidates the caller itself
// considered available: with total churn, the forced client must be the
// lowest-ID *caller-available* one, and with nothing caller-available the
// cohort is empty rather than containing an unreachable client.
func TestAvailabilityFallbackRespectsCallerAvailability(t *testing.T) {
	s := &Availability{Inner: UniformRandom{}, DownProb: 1, UpProb: 0}
	cands := makeCandidates(4)
	cands[0].Available = false // the caller knows client 0 is unreachable
	rng := rand.New(rand.NewSource(12))
	got := s.Schedule(1, cands, 4, rng)
	if !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("fallback cohort %v, want the lowest caller-available client [1]", got)
	}

	s2 := &Availability{Inner: UniformRandom{}, DownProb: 1, UpProb: 0}
	for i := range cands {
		cands[i].Available = false
	}
	if got := s2.Schedule(1, cands, 4, rng); len(got) != 0 {
		t.Fatalf("nothing caller-available, got cohort %v", got)
	}
}

func TestTrackerObserveStampAndNaN(t *testing.T) {
	tr := NewTracker()
	tr.Observe(3, 0.7, 12.5)
	tr.Observe(4, math.NaN(), 2.0) // no utility signal: stores seconds only
	tr.Observe(5, 0.2, math.NaN())

	if u, ok := tr.Utility(3); !ok || u != 0.7 {
		t.Fatalf("utility(3) = %v,%v", u, ok)
	}
	if _, ok := tr.Utility(4); ok {
		t.Fatal("NaN utility must not be stored")
	}
	if s := tr.Seconds(4); s != 2.0 {
		t.Fatalf("seconds(4) = %v", s)
	}
	if s := tr.Seconds(5); s != 0 {
		t.Fatalf("NaN seconds must not be stored, got %v", s)
	}

	cands := []Candidate{{ClientID: 3}, {ClientID: 4}, {ClientID: 5}}
	tr.Stamp(cands)
	if !cands[0].HasUtility || cands[0].Utility != 0.7 {
		t.Fatalf("stamp client 3: %+v", cands[0])
	}
	if cands[1].HasUtility {
		t.Fatalf("stamp client 4 must stay unscored: %+v", cands[1])
	}
	if !cands[2].HasUtility || cands[2].Utility != 0.2 {
		t.Fatalf("stamp client 5: %+v", cands[2])
	}
}

func TestTrackerObserveUpdateFallbackAndTimeout(t *testing.T) {
	tr := NewTracker()
	// With an entropy signal, the utility is the entropy, not the loss.
	tr.ObserveUpdate(1, 0.9, 2.5, 3.0)
	if u, ok := tr.Utility(1); !ok || u != 0.9 {
		t.Fatalf("utility(1) = %v,%v", u, ok)
	}
	// Without one (NaN), it falls back to the train loss.
	tr.ObserveUpdate(2, math.NaN(), 2.5, 3.0)
	if u, ok := tr.Utility(2); !ok || u != 2.5 {
		t.Fatalf("utility(2) = %v,%v", u, ok)
	}

	// A timeout records at least the deadline, so a hung client that never
	// reported stops looking instant to time-driven policies...
	tr.ObserveTimeout(3, 30)
	if s := tr.Seconds(3); s != 30 {
		t.Fatalf("seconds(3) = %v", s)
	}
	// ...but never shrinks a larger measured time, and a zero deadline
	// (timeouts impossible) is a no-op.
	tr.ObserveTimeout(1, 1)
	if s := tr.Seconds(1); s != 3.0 {
		t.Fatalf("seconds(1) = %v", s)
	}
	tr.ObserveTimeout(4, 0)
	if s := tr.Seconds(4); s != 0 {
		t.Fatalf("seconds(4) = %v", s)
	}
}

func TestParseRoundTripsPolicyNames(t *testing.T) {
	for _, name := range []string{"uniform", "size", "entropy", "powerd"} {
		s, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("Parse(%q).Name() = %q", name, s.Name())
		}
	}
	s, err := Parse("avail:entropy")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "avail:entropy" {
		t.Fatalf("wrapper name %q", s.Name())
	}
	if _, err := Parse("fifo"); err == nil {
		t.Fatal("Parse must reject unknown policies")
	}
	if _, err := Parse("avail:fifo"); err == nil {
		t.Fatal("Parse must reject unknown inner policies")
	}
}

// TestAvailabilitySnapshotRestore pins the Stateful contract: the churn
// chain's snapshot is deterministic, restores exactly, and a restored
// instance continues scheduling identically to the original.
func TestAvailabilitySnapshotRestore(t *testing.T) {
	cands := make([]Candidate, 6)
	for i := range cands {
		cands[i] = Candidate{ClientID: i, DataSize: 10, Available: true}
	}
	orig := &Availability{Inner: UniformRandom{}, DownProb: 0.4, UpProb: 0.5}

	// Fresh (never scheduled) state snapshots and restores cleanly.
	blob, err := orig.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != 8 {
		t.Fatalf("fresh snapshot %d bytes, want 8 (count only)", len(blob))
	}

	for round := 1; round <= 3; round++ {
		orig.Schedule(round, cands, 3, rand.New(rand.NewSource(int64(round))))
	}
	blob, err = orig.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := orig.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("snapshot is not deterministic")
	}

	restored := &Availability{Inner: UniformRandom{}, DownProb: 0.4, UpProb: 0.5}
	if err := restored.RestoreState(blob); err != nil {
		t.Fatal(err)
	}
	for round := 4; round <= 8; round++ {
		rngA := rand.New(rand.NewSource(int64(100 + round)))
		rngB := rand.New(rand.NewSource(int64(100 + round)))
		a := orig.Schedule(round, cands, 3, rngA)
		b := restored.Schedule(round, cands, 3, rngB)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round %d: restored chain diverged: %v vs %v", round, a, b)
		}
	}
}

// TestAvailabilityRestoreRejectsCorruptState: malformed blobs are typed
// errors, never applied.
func TestAvailabilityRestoreRejectsCorruptState(t *testing.T) {
	a := &Availability{}
	for _, blob := range [][]byte{
		nil,
		{1, 2, 3},
		{1, 0, 0, 0, 0, 0, 0, 0}, // claims 1 client, no entry
		{1, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 9}, // invalid status byte
		{2, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 1}, // count overruns
		// Count = 9^-1 mod 2^64, so 9*n overflows uint64 back to exactly
		// len(rest)=1: must be rejected by the division guard, not panic
		// the decode loop.
		{0x39, 0x8E, 0xE3, 0x38, 0x8E, 0xE3, 0x38, 0x8E, 1},
	} {
		if err := a.RestoreState(blob); !errors.Is(err, ErrSched) {
			t.Fatalf("blob %v: got %v, want ErrSched", blob, err)
		}
	}
	if a.up != nil {
		t.Fatal("corrupt state was partially applied")
	}
}

// TestTrackerExportRestore round-trips the feedback store.
func TestTrackerExportRestore(t *testing.T) {
	tr := NewTracker()
	tr.ObserveUpdate(1, 0.9, 0.5, 12)
	tr.ObserveUpdate(2, math.NaN(), 0.7, 8)
	util, seconds := tr.Export()

	// Export returns copies: mutating them must not touch the tracker.
	util[1] = -1
	if u, _ := tr.Utility(1); u != 0.9 {
		t.Fatal("Export aliases the tracker's map")
	}
	util[1] = 0.9

	tr2 := NewTracker()
	tr2.Restore(util, seconds)
	if u, ok := tr2.Utility(1); !ok || u != 0.9 {
		t.Fatalf("utility(1) = %v, %v", u, ok)
	}
	if u, ok := tr2.Utility(2); !ok || u != 0.7 {
		t.Fatalf("utility(2) = %v, %v (loss fallback lost)", u, ok)
	}
	if s := tr2.Seconds(2); s != 8 {
		t.Fatalf("seconds(2) = %v", s)
	}
	// Restoring nil clears.
	tr2.Restore(nil, nil)
	if _, ok := tr2.Utility(1); ok {
		t.Fatal("Restore(nil, nil) did not clear")
	}
}
