package sched

// Cohort-sampling benchmarks at federation scale: N = 1e5 candidates,
// K = 1000 cohort slots — the regime the ROADMAP's millions-of-users server
// must sustain once per round. Results feed BENCH_sched.json.

import (
	"math/rand"
	"testing"
)

const (
	benchN = 100_000
	benchK = 1_000
)

// benchCandidates builds the N=1e5 candidate pool once per benchmark.
func benchCandidates() []Candidate {
	rng := rand.New(rand.NewSource(42))
	out := make([]Candidate, benchN)
	for i := range out {
		out[i] = Candidate{
			ClientID:         i,
			DataSize:         50 + rng.Intn(500),
			ProjectedSeconds: 1 + 10*rng.Float64(),
			Utility:          rng.Float64(),
			HasUtility:       rng.Intn(4) != 0,
			Available:        true,
		}
	}
	return out
}

// benchSchedule times one Schedule call per iteration.
func benchSchedule(b *testing.B, s Scheduler) {
	b.Helper()
	cands := benchCandidates()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cohort := s.Schedule(i+1, cands, benchK, rng)
		if len(cohort) == 0 {
			b.Fatal("empty cohort")
		}
	}
}

func BenchmarkUniformRandom100k(b *testing.B)  { benchSchedule(b, UniformRandom{}) }
func BenchmarkSizeWeighted100k(b *testing.B)   { benchSchedule(b, SizeWeighted{}) }
func BenchmarkEntropyUtility100k(b *testing.B) { benchSchedule(b, EntropyUtility{}) }
func BenchmarkPowerOfD100k(b *testing.B)       { benchSchedule(b, PowerOfD{}) }
func BenchmarkAvailability100k(b *testing.B) {
	benchSchedule(b, &Availability{Inner: UniformRandom{}, DownProb: 0.1, UpProb: 0.3})
}
