// Integration tests exercising the public facade end to end, the way the
// examples and a downstream user would.
package fedfteds_test

import (
	"math/rand"
	"testing"

	"fedfteds"
)

func TestFacadeEndToEndFedFTEDS(t *testing.T) {
	const (
		seed       = 5
		numClients = 4
	)
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	source, err := suite.Source.GenerateBalanced(1500, rng)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := suite.Target10.GenerateBalanced(numClients*40, rng)
	if err != nil {
		t.Fatal(err)
	}
	test, err := suite.Target10.GenerateBalanced(200, rng)
	if err != nil {
		t.Fatal(err)
	}

	spec := fedfteds.ModelSpec{
		Arch:       fedfteds.ArchMLP,
		InputShape: pool.SampleShape(),
		NumClasses: pool.NumClasses,
		Hidden:     32,
		InitSeed:   seed,
	}
	global, err := fedfteds.PretrainTransfer(spec, source, fedfteds.CentralConfig{
		Epochs: 6, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	parts, err := fedfteds.DirichletPartition(pool.Y, numClients, 0.5, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	devices, err := fedfteds.NewHeterogeneousDevices(numClients, 1e9, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*fedfteds.Client, numClients)
	for i, idxs := range parts {
		local, err := pool.Subset(idxs)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = &fedfteds.Client{ID: i, Data: local, Device: devices[i]}
	}

	runner, err := fedfteds.NewRunner(fedfteds.Config{
		Rounds:         8,
		LocalEpochs:    3,
		LR:             0.05,
		Momentum:       0.5,
		FinetunePart:   fedfteds.FinetuneModerate,
		Selector:       fedfteds.EntropySelector{Temperature: 0.1},
		SelectFraction: 0.5,
		Seed:           seed,
	}, global, clients, test)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := runner.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hist.BestAccuracy <= 0.15 {
		t.Fatalf("facade run did not learn: best %.3f", hist.BestAccuracy)
	}
	if hist.TotalUplinkBytes <= 0 || hist.TotalTrainSeconds <= 0 {
		t.Fatal("accounting empty")
	}
	acc, err := fedfteds.Accuracy(runner.GlobalModel(), test)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0 {
		t.Fatalf("final accuracy %v", acc)
	}
}

func TestFacadeExperimentEnv(t *testing.T) {
	env, err := fedfteds.NewExperimentEnv(fedfteds.ScaleSmoke, 9)
	if err != nil {
		t.Fatal(err)
	}
	if env.Dims.Rounds <= 0 {
		t.Fatal("empty dimensions")
	}
	if fedfteds.ScaleFast.String() != "fast" {
		t.Fatal("scale naming")
	}
}

func TestFacadeCKA(t *testing.T) {
	suite, err := fedfteds.NewDomainSuite(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ds, err := suite.Target10.GenerateBalanced(50, rng)
	if err != nil {
		t.Fatal(err)
	}
	v, err := fedfteds.LinearCKA(ds.X, ds.X)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.999 {
		t.Fatalf("CKA(X,X) = %v", v)
	}
}
