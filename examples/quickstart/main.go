// Quickstart: the smallest complete FedFT-EDS run.
//
// It builds a synthetic domain suite, pretrains a global model on the source
// domain, partitions a 10-class target across 8 clients with Dirichlet(0.1)
// label skew, and runs federated fine-tuning with entropy-based data
// selection — clients train only the upper part of the model on the 50% most
// uncertain local samples each round.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedfteds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed       = 7
		numClients = 8
		alpha      = 0.1 // strong non-IID
	)

	// 1. Synthetic domains: a broad source for pretraining and a 10-class
	// downstream target sharing the same low-level structure.
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	sourceData, err := suite.Source.GenerateBalanced(4000, rng)
	if err != nil {
		return err
	}
	pool, err := suite.Target10.GenerateBalanced(numClients*60, rng)
	if err != nil {
		return err
	}
	test, err := suite.Target10.GenerateBalanced(600, rng)
	if err != nil {
		return err
	}

	// 2. Pretrain the global model on the source domain and transfer the
	// feature extractor (paper Sec. III-B).
	spec := fedfteds.ModelSpec{
		Arch:       fedfteds.ArchMLP,
		InputShape: pool.SampleShape(),
		NumClasses: pool.NumClasses,
		Hidden:     64,
		InitSeed:   seed,
	}
	global, err := fedfteds.PretrainTransfer(spec, sourceData, fedfteds.CentralConfig{
		Epochs: 10, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("pretrained the global model on", suite.Source.Spec.Name)

	// 3. Partition the target data across clients with Dirichlet label skew
	// and attach heterogeneous device speeds.
	parts, err := fedfteds.DirichletPartition(pool.Y, numClients, alpha, 5, rng)
	if err != nil {
		return err
	}
	devices, err := fedfteds.NewHeterogeneousDevices(numClients, 1e9, 0.35, rng)
	if err != nil {
		return err
	}
	clients := make([]*fedfteds.Client, numClients)
	for i, idxs := range parts {
		local, err := pool.Subset(idxs)
		if err != nil {
			return err
		}
		clients[i] = &fedfteds.Client{ID: i, Data: local, Device: devices[i]}
		fmt.Printf("client %d: %d samples, label histogram %v\n", i, local.Len(), local.ClassHistogram())
	}

	// 4. Run FedFT-EDS: partial fine-tuning from the "up" group, entropy
	// selection with hardened softmax (ρ = 0.1), 50% of local data.
	runner, err := fedfteds.NewRunner(fedfteds.Config{
		Rounds:         12,
		LocalEpochs:    5,
		LR:             0.05,
		Momentum:       0.5,
		FinetunePart:   fedfteds.FinetuneModerate,
		Selector:       fedfteds.EntropySelector{Temperature: 0.1},
		SelectFraction: 0.5,
		Seed:           seed,
	}, global, clients, test)
	if err != nil {
		return err
	}
	hist, err := runner.Run()
	if err != nil {
		return err
	}

	for _, rec := range hist.Records {
		fmt.Printf("round %2d: accuracy %5.2f%%  (cumulative client time %6.1fs, uplink %d KiB)\n",
			rec.Round, 100*rec.TestAccuracy, rec.CumTrainSeconds, rec.CumUplinkBytes/1024)
	}
	eff, err := hist.LearningEfficiency()
	if err != nil {
		return err
	}
	fmt.Printf("\nbest accuracy %.2f%%, learning efficiency %.2f %%/s\n", 100*hist.BestAccuracy, eff)
	return nil
}
