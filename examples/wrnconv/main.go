// WRN conv path: the paper's actual architecture (Wide ResNet 16-1) on
// image-shaped synthetic data, exercising the convolutional substrate —
// conv2d, batch-norm, residual blocks with projection shortcuts, global
// average pooling — including partial freezing for federated fine-tuning.
//
// The 64-dimensional synthetic observations are reshaped into 1×8×8 planes:
// the rendering's spatial structure is arbitrary but fixed, which is all a
// convnet needs to learn it.
//
// Run with:
//
//	go run ./examples/wrnconv
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedfteds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const seed = 13
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	train, err := suite.Target10.GenerateBalanced(240, rng)
	if err != nil {
		return err
	}
	test, err := suite.Target10.GenerateBalanced(160, rng)
	if err != nil {
		return err
	}
	// Reshape flat 64-dim observations into 1×8×8 image planes.
	trainX, err := train.X.Reshape(train.Len(), 1, 8, 8)
	if err != nil {
		return err
	}
	testX, err := test.X.Reshape(test.Len(), 1, 8, 8)
	if err != nil {
		return err
	}
	train.X, test.X = trainX, testX

	model, err := fedfteds.BuildModel(fedfteds.ModelSpec{
		Arch:        fedfteds.ArchWRN,
		InputShape:  []int{1, 8, 8},
		NumClasses:  train.NumClasses,
		Depth:       16,
		WidthFactor: 1,
		InitSeed:    seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("WRN-16-1: %d parameters, %d forward FLOPs per sample\n",
		model.ParamCount(), model.ForwardFLOPsPerSample())

	hist, err := fedfteds.TrainCentralized(model, train, test, fedfteds.CentralConfig{
		Epochs: 3, BatchSize: 16, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("after full training:       accuracy %.2f%%\n", 100*hist.BestAccuracy)

	// Partial fine-tuning on the conv path: freeze low+mid (the paper's
	// "fine-tuned from layer 3") and continue.
	if err := model.SetFinetunePart(fedfteds.FinetuneModerate); err != nil {
		return err
	}
	fmt.Printf("trainable after freezing:  %d of %d parameters, train FLOPs %d/sample\n",
		model.TrainableParamCount(), model.ParamCount(), model.TrainFLOPsPerSample())
	hist2, err := fedfteds.TrainCentralized(model, train, test, fedfteds.CentralConfig{
		Epochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.5, Seed: seed + 1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("after partial fine-tuning: accuracy %.2f%%\n", 100*hist2.BestAccuracy)
	return nil
}
