// Heterogeneity deep-dive: how Dirichlet label skew changes what
// entropy-based data selection picks, and what that does to accuracy.
//
// For three heterogeneity levels (α = 0.05, 0.5, 5.0) the example prints the
// partition's skew statistics, the per-client overlap between the entropy
// selection and each client's minority classes, and the final accuracies of
// EDS vs RDS — the mechanism behind the paper's Fig. 10b.
//
// Run with:
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedfteds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed       = 11
		numClients = 8
	)
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	sourceData, err := suite.Source.GenerateBalanced(4000, rng)
	if err != nil {
		return err
	}
	spec := fedfteds.ModelSpec{
		Arch:       fedfteds.ArchMLP,
		InputShape: suite.Target10.ObsShape(),
		NumClasses: suite.Target10.Spec.NumClasses,
		Hidden:     64,
		InitSeed:   seed,
	}
	pretrained, err := fedfteds.PretrainTransfer(spec, sourceData, fedfteds.CentralConfig{
		Epochs: 10, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		return err
	}

	for _, alpha := range []float64{0.05, 0.5, 5.0} {
		pool, err := suite.Target10.GenerateBalanced(numClients*60, rng)
		if err != nil {
			return err
		}
		test, err := suite.Target10.GenerateBalanced(600, rng)
		if err != nil {
			return err
		}
		parts, err := fedfteds.DirichletPartition(pool.Y, numClients, alpha, 5, rng)
		if err != nil {
			return err
		}

		// Skew statistics: the average share of a client's most common class.
		var maxShare float64
		clients := make([]*fedfteds.Client, numClients)
		for i, idxs := range parts {
			local, err := pool.Subset(idxs)
			if err != nil {
				return err
			}
			clients[i] = &fedfteds.Client{ID: i, Data: local, Device: fedfteds.Device{FLOPSRate: 1e9}}
			hist := local.ClassHistogram()
			best := 0
			for _, c := range hist {
				if c > best {
					best = c
				}
			}
			maxShare += float64(best) / float64(local.Len())
		}
		maxShare /= numClients
		fmt.Printf("\n=== Diri(%g): mean max-class share %.2f ===\n", alpha, maxShare)

		// What does entropy selection pick? Compare each client's selected
		// label histogram against its local histogram.
		sel := fedfteds.EntropySelector{Temperature: 0.1}
		cl := clients[0]
		model, err := pretrained.Clone()
		if err != nil {
			return err
		}
		picked, err := sel.Select(model, cl.Data, 0.5, rand.New(rand.NewSource(seed)))
		if err != nil {
			return err
		}
		selHist := make([]int, cl.Data.NumClasses)
		for _, idx := range picked {
			selHist[cl.Data.Y[idx]]++
		}
		fmt.Printf("client 0 local histogram    %v\n", cl.Data.ClassHistogram())
		fmt.Printf("client 0 EDS(50%%) histogram %v\n", selHist)

		// EDS vs RDS accuracy at this heterogeneity.
		for _, cfg := range []struct {
			name string
			sel  fedfteds.Selector
		}{
			{name: "FedFT-EDS", sel: fedfteds.EntropySelector{Temperature: 0.1}},
			{name: "FedFT-RDS", sel: fedfteds.RandomSelector{}},
		} {
			global, err := pretrained.Clone()
			if err != nil {
				return err
			}
			runner, err := fedfteds.NewRunner(fedfteds.Config{
				Rounds:         10,
				LocalEpochs:    5,
				LR:             0.05,
				Momentum:       0.5,
				FinetunePart:   fedfteds.FinetuneModerate,
				Selector:       cfg.sel,
				SelectFraction: 0.5,
				Seed:           seed,
			}, global, clients, test)
			if err != nil {
				return err
			}
			hist, err := runner.Run()
			if err != nil {
				return err
			}
			fmt.Printf("%s (50%%): best accuracy %.2f%%\n", cfg.name, 100*hist.BestAccuracy)
		}
	}
	return nil
}
