// Cross-domain transfer (paper Table IV, scaled down): federated
// fine-tuning on a far domain — the speech-command analogue whose low-level
// statistics are distorted relative to the pretraining source.
//
// The example shows that (1) pretraining still helps across the domain gap,
// and (2) entropy-based selection beats random selection on the far domain,
// and reports the centralized upper bound to show how much headroom the
// strong domain shift leaves.
//
// Run with:
//
//	go run ./examples/crossdomain
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedfteds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed       = 31
		numClients = 16
	)
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		return err
	}
	far := suite.Far
	fmt.Printf("far domain %q: %d classes, distorted low-level statistics\n",
		far.Spec.Name, far.Spec.NumClasses)

	rng := rand.New(rand.NewSource(seed))
	sourceData, err := suite.Source.GenerateBalanced(4000, rng)
	if err != nil {
		return err
	}
	pool, err := far.GenerateBalanced(numClients*50, rng)
	if err != nil {
		return err
	}
	test, err := far.GenerateBalanced(600, rng)
	if err != nil {
		return err
	}
	parts, err := fedfteds.DirichletPartition(pool.Y, numClients, 0.1, 5, rng)
	if err != nil {
		return err
	}
	clients := make([]*fedfteds.Client, numClients)
	for i, idxs := range parts {
		local, err := pool.Subset(idxs)
		if err != nil {
			return err
		}
		clients[i] = &fedfteds.Client{ID: i, Data: local, Device: fedfteds.Device{FLOPSRate: 1e9}}
	}

	spec := fedfteds.ModelSpec{
		Arch:       fedfteds.ArchMLP,
		InputShape: pool.SampleShape(),
		NumClasses: pool.NumClasses,
		Hidden:     64,
		InitSeed:   seed,
	}
	pretrained, err := fedfteds.PretrainTransfer(spec, sourceData, fedfteds.CentralConfig{
		Epochs: 10, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		return err
	}

	type method struct {
		name       string
		pretrained bool
		part       fedfteds.FinetunePart
		selector   fedfteds.Selector
		fraction   float64
	}
	methods := []method{
		{name: "FedAvg w/o pretraining", pretrained: false, part: fedfteds.FinetuneFull,
			selector: fedfteds.AllSelector{}, fraction: 1},
		{name: "FedAvg w/ pretraining", pretrained: true, part: fedfteds.FinetuneFull,
			selector: fedfteds.AllSelector{}, fraction: 1},
		{name: "FedFT-RDS (50%)", pretrained: true, part: fedfteds.FinetuneModerate,
			selector: fedfteds.RandomSelector{}, fraction: 0.5},
		{name: "FedFT-EDS (50%)", pretrained: true, part: fedfteds.FinetuneModerate,
			selector: fedfteds.EntropySelector{Temperature: 0.1}, fraction: 0.5},
	}
	for _, m := range methods {
		var global *fedfteds.Model
		if m.pretrained {
			global, err = pretrained.Clone()
		} else {
			global, err = fedfteds.BuildModel(spec)
		}
		if err != nil {
			return err
		}
		runner, err := fedfteds.NewRunner(fedfteds.Config{
			Rounds:         12,
			LocalEpochs:    5,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   m.part,
			Selector:       m.selector,
			SelectFraction: m.fraction,
			Seed:           seed,
		}, global, clients, test)
		if err != nil {
			return err
		}
		hist, err := runner.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-24s best accuracy %.2f%%\n", m.name, 100*hist.BestAccuracy)
	}

	// The centralized upper bound on the far domain.
	central, err := pretrained.Clone()
	if err != nil {
		return err
	}
	if err := central.SetFinetunePart(fedfteds.FinetuneFull); err != nil {
		return err
	}
	hist, err := fedfteds.TrainCentralized(central, pool, test, fedfteds.CentralConfig{
		Epochs: 12, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-24s best accuracy %.2f%%\n", "Centralised (bound)", 100*hist.BestAccuracy)
	return nil
}
