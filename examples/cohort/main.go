// Cohort scheduling with client churn: a 20-client federation where the
// server only trains K=5 clients per round, comparing three schedulers end
// to end through the public API:
//
//   - the full pool every round (no scheduler — the legacy baseline),
//   - uniform random cohorts (classical FedAvg sampling),
//   - entropy-utility cohorts under churn: an Availability wrapper models
//     clients going offline (Markov on/off process) around an ε-greedy
//     policy that exploits the clients reporting the highest mean EDS
//     entropy — the paper's sample-level uncertainty signal reused one
//     level up, as a client-level utility.
//
// The punchline mirrors the paper's workload-reduction argument: cohort
// scheduling cuts cumulative client compute by ~4× while the utility-driven
// policy keeps most of the accuracy, even with a quarter of the fleet
// flickering offline.
//
// Run with:
//
//	go run ./examples/cohort
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedfteds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed       = 41
		numClients = 20
		cohortK    = 5
		rounds     = 8
	)
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	sourceData, err := suite.Source.GenerateBalanced(3000, rng)
	if err != nil {
		return err
	}
	pool, err := suite.Target10.GenerateBalanced(numClients*50, rng)
	if err != nil {
		return err
	}
	test, err := suite.Target10.GenerateBalanced(500, rng)
	if err != nil {
		return err
	}
	spec := fedfteds.ModelSpec{
		Arch:       fedfteds.ArchMLP,
		InputShape: pool.SampleShape(),
		NumClasses: pool.NumClasses,
		Hidden:     64,
		InitSeed:   seed,
	}
	pretrained, err := fedfteds.PretrainTransfer(spec, sourceData, fedfteds.CentralConfig{
		Epochs: 8, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		return err
	}

	parts, err := fedfteds.DirichletPartition(pool.Y, numClients, 0.1, 5, rng)
	if err != nil {
		return err
	}
	devices, err := fedfteds.NewHeterogeneousDevices(numClients, 1e9, 0.5, rng)
	if err != nil {
		return err
	}
	clients := make([]*fedfteds.Client, numClients)
	for i, idxs := range parts {
		ds, err := pool.Subset(idxs)
		if err != nil {
			return err
		}
		clients[i] = &fedfteds.Client{ID: i, Data: ds, Device: devices[i]}
	}

	// Every run shares the model initialization and seed; only the cohort
	// schedule differs.
	runs := []struct {
		name      string
		scheduler fedfteds.Scheduler
		cohort    int
	}{
		{name: "full pool (no scheduler)"},
		{name: "uniform cohort K=5", scheduler: fedfteds.UniformRandom{}, cohort: cohortK},
		{name: "entropy cohort K=5 under churn",
			scheduler: &fedfteds.Availability{
				Inner:    fedfteds.EntropyUtility{Epsilon: 0.2},
				DownProb: 0.25, UpProb: 0.5,
			},
			cohort: cohortK},
	}
	fmt.Printf("%d clients, %d rounds, FedFT-EDS locals (moderate part, P_ds=0.5)\n\n", numClients, rounds)
	for _, r := range runs {
		global, err := pretrained.Clone()
		if err != nil {
			return err
		}
		cfg := fedfteds.Config{
			Rounds:         rounds,
			LocalEpochs:    2,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   fedfteds.FinetuneModerate,
			Selector:       fedfteds.EntropySelector{Temperature: 0.1},
			SelectFraction: 0.5,
			Scheduler:      r.scheduler,
			CohortSize:     r.cohort,
			Seed:           seed,
		}
		runner, err := fedfteds.NewRunner(cfg, global, clients, test)
		if err != nil {
			return err
		}
		hist, err := runner.Run()
		if err != nil {
			return err
		}
		fmt.Printf("%-32s best %.2f%%  final %.2f%%  client-seconds %8.1f\n",
			r.name, 100*hist.BestAccuracy, 100*hist.FinalAccuracy, hist.TotalTrainSeconds)
		last := hist.Records[len(hist.Records)-1]
		fmt.Printf("%-32s last round: policy %q, cohort %d, %d participated\n\n",
			"", last.SchedPolicy, last.CohortSize, last.Participants)
	}
	return nil
}
