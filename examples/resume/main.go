// Resume: interrupt a federated run and continue it bit-identically.
//
// The demo runs the same FedFT-EDS federation three ways: (1) straight
// through for 10 rounds, (2) killed after round 4 — simulated by a run whose
// round budget is 4 — leaving checkpoints behind, and (3) a fresh process
// resuming from the latest checkpoint to finish rounds 5–10. The resumed
// history and final model state match the uninterrupted run byte for byte:
// checkpoints carry the global model, the scheduler's utility-feedback
// state, the cost accounting and the history, and all per-round randomness
// is derived from (seed, round), so nothing drifts across the restart.
//
// Run with:
//
//	go run ./examples/resume
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"fedfteds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildWorld constructs the deterministic demo federation: domains, a
// pretrained global model and Dirichlet-partitioned clients. Both "processes"
// of the demo call it, exactly like a restarted binary would.
func buildWorld(seed int64, numClients int) (*fedfteds.Model, []*fedfteds.Client, *fedfteds.Dataset, error) {
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	sourceData, err := suite.Source.GenerateBalanced(3000, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	pool, err := suite.Target10.GenerateBalanced(numClients*60, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	test, err := suite.Target10.GenerateBalanced(500, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	global, err := fedfteds.PretrainTransfer(fedfteds.ModelSpec{
		Arch:       fedfteds.ArchMLP,
		InputShape: pool.SampleShape(),
		NumClasses: pool.NumClasses,
		Hidden:     64,
		InitSeed:   seed,
	}, sourceData, fedfteds.CentralConfig{Epochs: 8, LR: 0.05, Momentum: 0.5, Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	parts, err := fedfteds.DirichletPartition(pool.Y, numClients, 0.1, 5, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	devices, err := fedfteds.NewHeterogeneousDevices(numClients, 1e9, 0.35, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	clients := make([]*fedfteds.Client, numClients)
	for i, idxs := range parts {
		local, err := pool.Subset(idxs)
		if err != nil {
			return nil, nil, nil, err
		}
		clients[i] = &fedfteds.Client{ID: i, Data: local, Device: devices[i]}
	}
	return global, clients, test, nil
}

func run() error {
	const (
		seed       = 7
		numClients = 8
		rounds     = 10
		killAfter  = 4
	)
	cfg := fedfteds.Config{
		Rounds:         rounds,
		LocalEpochs:    3,
		LR:             0.05,
		Momentum:       0.5,
		FinetunePart:   fedfteds.FinetuneModerate,
		Selector:       fedfteds.EntropySelector{Temperature: 0.1},
		SelectFraction: 0.5,
		Scheduler:      fedfteds.EntropyUtility{},
		CohortSize:     4,
		Seed:           seed,
	}

	// Reference: the uninterrupted run.
	global, clients, test, err := buildWorld(seed, numClients)
	if err != nil {
		return err
	}
	runner, err := fedfteds.NewRunner(cfg, global, clients, test)
	if err != nil {
		return err
	}
	full, err := runner.Run()
	if err != nil {
		return err
	}
	fmt.Printf("uninterrupted run: %d rounds, best accuracy %.2f%%\n", rounds, 100*full.BestAccuracy)

	// "Process one": checkpoints every round, killed after round 4.
	dir, err := os.MkdirTemp("", "fedfteds-resume-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	killedCfg := cfg
	killedCfg.Rounds = killAfter
	killedCfg.CheckpointDir = dir
	global1, clients1, test1, err := buildWorld(seed, numClients)
	if err != nil {
		return err
	}
	runner1, err := fedfteds.NewRunner(killedCfg, global1, clients1, test1)
	if err != nil {
		return err
	}
	if _, err := runner1.Run(); err != nil {
		return err
	}
	fmt.Printf("interrupted after round %d; checkpoints in %s\n", killAfter, dir)

	// "Process two": a fresh world, resumed from the latest checkpoint.
	resumedCfg := cfg
	resumedCfg.CheckpointDir = dir
	global2, clients2, test2, err := buildWorld(seed, numClients)
	if err != nil {
		return err
	}
	runner2, err := fedfteds.NewRunner(resumedCfg, global2, clients2, test2)
	if err != nil {
		return err
	}
	at, err := runner2.ResumeLatest()
	if err != nil {
		return err
	}
	fmt.Printf("resumed from round %d, finishing rounds %d-%d\n", at, at+1, rounds)
	resumed, err := runner2.Run()
	if err != nil {
		return err
	}

	// The resumed run is bit-identical to the uninterrupted one.
	for i, rec := range full.Records {
		r2 := resumed.Records[i]
		marker := "=="
		if math.Float64bits(rec.TestAccuracy) != math.Float64bits(r2.TestAccuracy) ||
			math.Float64bits(rec.MeanTrainLoss) != math.Float64bits(r2.MeanTrainLoss) {
			marker = "!! DIVERGED"
		}
		fmt.Printf("round %2d: accuracy %5.2f%% / %5.2f%%  loss %.4f / %.4f  %s\n",
			rec.Round, 100*rec.TestAccuracy, 100*r2.TestAccuracy,
			rec.MeanTrainLoss, r2.MeanTrainLoss, marker)
	}
	identical := len(full.Records) == len(resumed.Records) &&
		math.Float64bits(full.BestAccuracy) == math.Float64bits(resumed.BestAccuracy) &&
		math.Float64bits(full.TotalTrainSeconds) == math.Float64bits(resumed.TotalTrainSeconds)
	for _, pair := range [][2]*fedfteds.Model{{global, global2}} {
		a, b := pair[0].StateTensors(), pair[1].StateTensors()
		for i := range a {
			if !a[i].Equal(b[i]) {
				identical = false
			}
		}
	}
	if !identical {
		return fmt.Errorf("resumed run diverged from the uninterrupted run")
	}
	fmt.Println("\nresumed history and final model state are bit-identical to the uninterrupted run")
	return nil
}
