// Straggler scenario (paper Table III, scaled down): a large client pool
// where the standard FedAvg workload makes slow devices drop out, versus
// FedFT-EDS whose reduced workload lets every device participate.
//
// The example runs three FedAvg participation levels (100%, 20%, 10%) and
// FedFT-EDS with full participation, then compares accuracy, total client
// compute time, and the paper's learning-efficiency metric. It also
// demonstrates the deadline-based straggler policy, where participation
// emerges from each device's projected round time instead of being fixed.
//
// Run with:
//
//	go run ./examples/straggler
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fedfteds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed       = 23
		numClients = 30
	)
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	sourceData, err := suite.Source.GenerateBalanced(4000, rng)
	if err != nil {
		return err
	}
	pool, err := suite.Target10.GenerateBalanced(numClients*50, rng)
	if err != nil {
		return err
	}
	test, err := suite.Target10.GenerateBalanced(600, rng)
	if err != nil {
		return err
	}
	spec := fedfteds.ModelSpec{
		Arch:       fedfteds.ArchMLP,
		InputShape: pool.SampleShape(),
		NumClasses: pool.NumClasses,
		Hidden:     64,
		InitSeed:   seed,
	}
	pretrained, err := fedfteds.PretrainTransfer(spec, sourceData, fedfteds.CentralConfig{
		Epochs: 10, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		return err
	}

	parts, err := fedfteds.DirichletPartition(pool.Y, numClients, 0.1, 5, rng)
	if err != nil {
		return err
	}
	// A strongly heterogeneous device population: some devices are 3-4×
	// slower than the median — the stragglers.
	devices, err := fedfteds.NewHeterogeneousDevices(numClients, 1e9, 0.6, rng)
	if err != nil {
		return err
	}
	clients := make([]*fedfteds.Client, numClients)
	for i, idxs := range parts {
		local, err := pool.Subset(idxs)
		if err != nil {
			return err
		}
		clients[i] = &fedfteds.Client{ID: i, Data: local, Device: devices[i]}
	}

	type scenario struct {
		name      string
		part      fedfteds.FinetunePart
		selector  fedfteds.Selector
		fraction  float64
		straggler fedfteds.StragglerPolicy
	}
	scenarios := []scenario{
		{name: "FedAvg 100% c.p.", part: fedfteds.FinetuneFull, selector: fedfteds.AllSelector{}, fraction: 1},
		{name: "FedAvg 20% c.p.", part: fedfteds.FinetuneFull, selector: fedfteds.AllSelector{}, fraction: 1,
			straggler: fedfteds.FractionParticipation{Fraction: 0.2}},
		{name: "FedAvg 10% c.p.", part: fedfteds.FinetuneFull, selector: fedfteds.AllSelector{}, fraction: 1,
			straggler: fedfteds.FractionParticipation{Fraction: 0.1}},
		{name: "FedFT-EDS (50%)", part: fedfteds.FinetuneModerate,
			selector: fedfteds.EntropySelector{Temperature: 0.1}, fraction: 0.5},
	}

	fmt.Printf("%-18s %-10s %-12s %-12s\n", "method", "best acc", "client time", "efficiency")
	for _, sc := range scenarios {
		global, err := pretrained.Clone()
		if err != nil {
			return err
		}
		runner, err := fedfteds.NewRunner(fedfteds.Config{
			Rounds:         12,
			LocalEpochs:    5,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   sc.part,
			Selector:       sc.selector,
			SelectFraction: sc.fraction,
			Straggler:      sc.straggler,
			Seed:           seed,
		}, global, clients, test)
		if err != nil {
			return err
		}
		hist, err := runner.Run()
		if err != nil {
			return err
		}
		eff, err := hist.LearningEfficiency()
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %8.2f%% %10.1fs %9.2f %%/s\n",
			sc.name, 100*hist.BestAccuracy, hist.TotalTrainSeconds, eff)
	}

	// Deadline-based stragglers: participation emerges from device speed.
	// Under a tight round deadline, full FedAvg loses its slow devices while
	// FedFT-EDS's lighter rounds fit almost everywhere.
	fmt.Println("\nwith a 40-millisecond round deadline instead of fixed participation:")
	for _, sc := range []scenario{
		{name: "FedAvg + deadline", part: fedfteds.FinetuneFull, selector: fedfteds.AllSelector{}, fraction: 1,
			straggler: fedfteds.DeadlineStraggler{DeadlineSeconds: 0.04}},
		{name: "FedFT-EDS + deadline", part: fedfteds.FinetuneModerate,
			selector: fedfteds.EntropySelector{Temperature: 0.1}, fraction: 0.5,
			straggler: fedfteds.DeadlineStraggler{DeadlineSeconds: 0.04}},
	} {
		global, err := pretrained.Clone()
		if err != nil {
			return err
		}
		runner, err := fedfteds.NewRunner(fedfteds.Config{
			Rounds:         12,
			LocalEpochs:    5,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   sc.part,
			Selector:       sc.selector,
			SelectFraction: sc.fraction,
			Straggler:      sc.straggler,
			Seed:           seed,
		}, global, clients, test)
		if err != nil {
			return err
		}
		hist, err := runner.Run()
		if err != nil {
			return err
		}
		var avgParticipants float64
		for _, rec := range hist.Records {
			avgParticipants += float64(rec.Participants)
		}
		avgParticipants /= float64(len(hist.Records))
		fmt.Printf("%-22s best %.2f%%, avg %.1f of %d clients finish each round\n",
			sc.name, 100*hist.BestAccuracy, avgParticipants, numClients)
	}
	return nil
}
