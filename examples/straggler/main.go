// Straggler scenario (paper Table III, scaled down): a large client pool
// where the standard FedAvg workload makes slow devices drop out, versus
// FedFT-EDS whose reduced workload lets every device participate.
//
// The example runs three FedAvg participation levels (100%, 20%, 10%) and
// FedFT-EDS with full participation, then compares accuracy, total client
// compute time, and the paper's learning-efficiency metric. It also
// demonstrates the deadline-based straggler policy, where participation
// emerges from each device's projected round time instead of being fixed,
// and finishes with a distributed kill-a-client scenario: the same wire
// protocol cmd/fedserver speaks, run in-process over pipes, where one
// client crashes mid-round and the quorum-based round engine completes the
// remaining rounds without it.
//
// Run with:
//
//	go run ./examples/straggler
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"fedfteds"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		seed       = 23
		numClients = 30
	)
	suite, err := fedfteds.NewDomainSuite(seed)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	sourceData, err := suite.Source.GenerateBalanced(4000, rng)
	if err != nil {
		return err
	}
	pool, err := suite.Target10.GenerateBalanced(numClients*50, rng)
	if err != nil {
		return err
	}
	test, err := suite.Target10.GenerateBalanced(600, rng)
	if err != nil {
		return err
	}
	spec := fedfteds.ModelSpec{
		Arch:       fedfteds.ArchMLP,
		InputShape: pool.SampleShape(),
		NumClasses: pool.NumClasses,
		Hidden:     64,
		InitSeed:   seed,
	}
	pretrained, err := fedfteds.PretrainTransfer(spec, sourceData, fedfteds.CentralConfig{
		Epochs: 10, LR: 0.05, Momentum: 0.5, Seed: seed,
	})
	if err != nil {
		return err
	}

	parts, err := fedfteds.DirichletPartition(pool.Y, numClients, 0.1, 5, rng)
	if err != nil {
		return err
	}
	// A strongly heterogeneous device population: some devices are 3-4×
	// slower than the median — the stragglers.
	devices, err := fedfteds.NewHeterogeneousDevices(numClients, 1e9, 0.6, rng)
	if err != nil {
		return err
	}
	clients := make([]*fedfteds.Client, numClients)
	for i, idxs := range parts {
		local, err := pool.Subset(idxs)
		if err != nil {
			return err
		}
		clients[i] = &fedfteds.Client{ID: i, Data: local, Device: devices[i]}
	}

	type scenario struct {
		name      string
		part      fedfteds.FinetunePart
		selector  fedfteds.Selector
		fraction  float64
		straggler fedfteds.StragglerPolicy
	}
	scenarios := []scenario{
		{name: "FedAvg 100% c.p.", part: fedfteds.FinetuneFull, selector: fedfteds.AllSelector{}, fraction: 1},
		{name: "FedAvg 20% c.p.", part: fedfteds.FinetuneFull, selector: fedfteds.AllSelector{}, fraction: 1,
			straggler: fedfteds.FractionParticipation{Fraction: 0.2}},
		{name: "FedAvg 10% c.p.", part: fedfteds.FinetuneFull, selector: fedfteds.AllSelector{}, fraction: 1,
			straggler: fedfteds.FractionParticipation{Fraction: 0.1}},
		{name: "FedFT-EDS (50%)", part: fedfteds.FinetuneModerate,
			selector: fedfteds.EntropySelector{Temperature: 0.1}, fraction: 0.5},
	}

	fmt.Printf("%-18s %-10s %-12s %-12s\n", "method", "best acc", "client time", "efficiency")
	for _, sc := range scenarios {
		global, err := pretrained.Clone()
		if err != nil {
			return err
		}
		runner, err := fedfteds.NewRunner(fedfteds.Config{
			Rounds:         12,
			LocalEpochs:    5,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   sc.part,
			Selector:       sc.selector,
			SelectFraction: sc.fraction,
			Straggler:      sc.straggler,
			Seed:           seed,
		}, global, clients, test)
		if err != nil {
			return err
		}
		hist, err := runner.Run()
		if err != nil {
			return err
		}
		eff, err := hist.LearningEfficiency()
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %8.2f%% %10.1fs %9.2f %%/s\n",
			sc.name, 100*hist.BestAccuracy, hist.TotalTrainSeconds, eff)
	}

	// Deadline-based stragglers: participation emerges from device speed.
	// Under a tight round deadline, full FedAvg loses its slow devices while
	// FedFT-EDS's lighter rounds fit almost everywhere.
	fmt.Println("\nwith a 40-millisecond round deadline instead of fixed participation:")
	for _, sc := range []scenario{
		{name: "FedAvg + deadline", part: fedfteds.FinetuneFull, selector: fedfteds.AllSelector{}, fraction: 1,
			straggler: fedfteds.DeadlineStraggler{DeadlineSeconds: 0.04}},
		{name: "FedFT-EDS + deadline", part: fedfteds.FinetuneModerate,
			selector: fedfteds.EntropySelector{Temperature: 0.1}, fraction: 0.5,
			straggler: fedfteds.DeadlineStraggler{DeadlineSeconds: 0.04}},
	} {
		global, err := pretrained.Clone()
		if err != nil {
			return err
		}
		runner, err := fedfteds.NewRunner(fedfteds.Config{
			Rounds:         12,
			LocalEpochs:    5,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   sc.part,
			Selector:       sc.selector,
			SelectFraction: sc.fraction,
			Straggler:      sc.straggler,
			Seed:           seed,
		}, global, clients, test)
		if err != nil {
			return err
		}
		hist, err := runner.Run()
		if err != nil {
			return err
		}
		var avgParticipants float64
		for _, rec := range hist.Records {
			avgParticipants += float64(rec.Participants)
		}
		avgParticipants /= float64(len(hist.Records))
		fmt.Printf("%-22s best %.2f%%, avg %.1f of %d clients finish each round\n",
			sc.name, 100*hist.BestAccuracy, avgParticipants, numClients)
	}

	return runDistributed(pretrained, clients, test, seed)
}

// runDistributed replays the straggler story on the real wire protocol: an
// in-process federation over pipe transports where client 2 crashes while
// a round is in flight. The quorum-based round engine drops it and the
// remaining clients finish the run.
func runDistributed(pretrained *fedfteds.Model, clients []*fedfteds.Client, test *fedfteds.Dataset, seed int64) error {
	const (
		distClients = 6
		distRounds  = 6
		killRound   = 3 // client 2 dies while round 3 is in flight
	)
	fmt.Println("\ndistributed mode (same protocol as fedserver/fedclient, in-process):")
	fmt.Printf("client 2 is killed during round %d; quorum 0.5 keeps the run alive:\n", killRound)

	lst := fedfteds.NewPipeListener(distClients)
	var wg sync.WaitGroup
	for i := 0; i < distClients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			kill := 0
			if id == 2 {
				kill = killRound
			}
			if err := runDistClient(lst.ClientSide(id), clients[id], pretrained, seed, kill); err != nil {
				log.Printf("client %d: %v", id, err)
			}
		}(i)
	}

	sess, err := fedfteds.AcceptClients(lst, distClients, distRounds)
	if err != nil {
		return err
	}
	engine, err := fedfteds.NewRoundEngine(sess, fedfteds.EngineConfig{
		Quorum:        0.5,
		RoundDeadline: 30 * time.Second, // safety net; the crash is what this demo exercises
	})
	if err != nil {
		return err
	}

	global, err := pretrained.Clone()
	if err != nil {
		return err
	}
	if err := global.SetFinetunePart(fedfteds.FinetuneModerate); err != nil {
		return err
	}
	commGroups := global.TrainableGroupNames()
	for round := 1; round <= distRounds; round++ {
		stateTs, err := global.GroupStateTensors(commGroups)
		if err != nil {
			return err
		}
		blob, err := fedfteds.EncodeTensors(stateTs)
		if err != nil {
			return err
		}
		agg := fedfteds.NewStreamAggregator()
		out, err := engine.RunRound(fedfteds.RoundStart{
			Round:          round,
			State:          blob,
			Groups:         commGroups,
			SelectFraction: 0.5,
			LocalEpochs:    2,
		}, agg.Add)
		if err != nil {
			return err
		}
		fused, err := agg.Finish()
		if err != nil {
			return err
		}
		// stateTs are live views of the global model's groups — copy the
		// aggregate straight back into them.
		for i := range stateTs {
			if err := stateTs[i].CopyFrom(fused[i]); err != nil {
				return err
			}
		}
		acc, err := fedfteds.Accuracy(global, test)
		if err != nil {
			return err
		}
		fmt.Printf("  round %d: %d/%d clients reported (%d dropped), accuracy %.2f%%\n",
			round, len(out.Reported), distClients, len(out.Dropped), 100*acc)
	}
	if err := sess.Shutdown("done"); err != nil {
		return err
	}
	wg.Wait()
	return nil
}

// runDistClient is the in-process analogue of cmd/fedclient. When
// killRound is reached it closes the connection mid-round without
// replying, simulating a crashed process.
func runDistClient(conn fedfteds.Conn, cl *fedfteds.Client, pretrained *fedfteds.Model, seed int64, killRound int) error {
	sess, welcome, err := fedfteds.JoinFederation(conn, cl.ID, cl.Data.Len())
	if err != nil {
		return err
	}
	global, err := pretrained.Clone()
	if err != nil {
		return err
	}
	if err := global.SetFinetunePart(fedfteds.FinetuneModerate); err != nil {
		return err
	}
	for {
		rs, ok, err := sess.NextRound()
		if err != nil {
			return err
		}
		if !ok {
			return sess.Close()
		}
		if killRound > 0 && rs.Round == killRound {
			fmt.Printf("  client %d: crashing during round %d\n", cl.ID, rs.Round)
			return conn.Close()
		}
		stateTs, err := fedfteds.DecodeTensors(rs.State)
		if err != nil {
			return err
		}
		dst, err := global.GroupStateTensors(rs.Groups)
		if err != nil {
			return err
		}
		for i := range dst {
			if err := dst[i].CopyFrom(stateTs[i]); err != nil {
				return err
			}
		}
		cfg, err := fedfteds.NewLocalConfig(fedfteds.Config{
			Rounds:         welcome.Rounds,
			LocalEpochs:    rs.LocalEpochs,
			LR:             0.05,
			Momentum:       0.5,
			FinetunePart:   fedfteds.FinetuneModerate,
			Selector:       fedfteds.EntropySelector{Temperature: 0.1},
			SelectFraction: rs.SelectFraction,
			Seed:           seed,
		})
		if err != nil {
			return err
		}
		out, err := fedfteds.LocalUpdate(cfg, global, cl, rs.Round)
		if err != nil {
			return err
		}
		blob, err := fedfteds.EncodeTensors(out.State)
		if err != nil {
			return err
		}
		if err := sess.SendUpdate(fedfteds.ClientUpdate{
			ClientID:     cl.ID,
			Round:        rs.Round,
			State:        blob,
			NumSelected:  out.NumSelected,
			TrainSeconds: out.Cost.Total(),
			TrainLoss:    out.TrainLoss,
		}); err != nil {
			return err
		}
	}
}
